//! Structured trace spans with a bounded in-memory buffer and byte-stable
//! JSONL export.
//!
//! Every span carries the same shape: a [`SpanKind`] from the fixed
//! taxonomy (round, BA⋆ step, sortition, verify, gossip hop, catch-up,
//! fault), the node id, the round, an optional step code, sim-time start
//! and end, a free `value` (bytes, counts), and an `ok` flag whose meaning
//! is kind-specific (verification verdict, votes-vs-timeout, final-vs-
//! tentative).
//!
//! Determinism: recording only *reads* values the simulation already
//! computed — it never draws randomness, never reorders events, and the
//! instrumented hot paths are no-ops when the tracer is disabled. In the
//! single-threaded simulation loop, buffer order is a pure function of
//! `(seed, schedule)` and the export is byte-stable — the property the
//! CI trace-determinism gate asserts. The parallel DES engine instead
//! gives every node its own tracer and stamps each event with a canonical
//! *order hint* ([`Tracer::set_order_hint`]); merging per-node buffers by
//! hint reproduces one canonical order no matter how many worker threads
//! ran, so the export stays byte-stable across worker counts.

use std::borrow::Cow;
use std::sync::{Arc, Mutex};

/// Virtual time in microseconds (the simulator's clock).
pub type Micros = u64;

/// Node id used for network-wide events (faults that target no node).
pub const NO_NODE: u32 = u32::MAX;

/// The span taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// One completed consensus round on one node (start of proposal wait
    /// to block append). `step` is the concluding BinaryBA⋆ step, `value`
    /// the agreed block's wire size, `ok` whether consensus was final.
    Round,
    /// The block-proposal portion of a round (priority wait + block wait).
    Proposal,
    /// One concluded BA⋆ phase (reduction 1/2, a BinaryBA⋆ step, or the
    /// final count). `ok` = concluded on votes (false = timeout).
    BaStep,
    /// A sortition selection (proposer or committee). `value` = sub-user
    /// count for committee selections.
    Sortition,
    /// One verification-stage verdict. `ok` = accepted.
    Verify,
    /// One vote accepted into a BA⋆ step tally (`label = "add"`) or a
    /// future-round vote parked for later (`label = "future"`). `id` is
    /// the vote message id, `cause` the voter id, `value` the sub-user
    /// count (adds) or the buffer occupancy after the park (futures).
    Tally,
    /// One gossip hop of a message body (send start to arrival), or a
    /// per-node `uplink_total`/`downlink_total` summary. `value` = bytes,
    /// `peer` = the sending node for per-hop spans.
    GossipHop,
    /// Catch-up activity: `request`, `apply`, or `watchdog` (see labels).
    Catchup,
    /// A scripted fault application or a recovery-protocol milestone.
    Fault,
}

impl SpanKind {
    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Round => "round",
            SpanKind::Proposal => "proposal",
            SpanKind::BaStep => "ba_step",
            SpanKind::Sortition => "sortition",
            SpanKind::Verify => "verify",
            SpanKind::Tally => "tally",
            SpanKind::GossipHop => "gossip_hop",
            SpanKind::Catchup => "catchup",
            SpanKind::Fault => "fault",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<SpanKind> {
        Some(match s {
            "round" => SpanKind::Round,
            "proposal" => SpanKind::Proposal,
            "ba_step" => SpanKind::BaStep,
            "sortition" => SpanKind::Sortition,
            "verify" => SpanKind::Verify,
            "tally" => SpanKind::Tally,
            "gossip_hop" => SpanKind::GossipHop,
            "catchup" => SpanKind::Catchup,
            "fault" => SpanKind::Fault,
            _ => return None,
        })
    }
}

/// One recorded span (or instantaneous event, when `start == end`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Which taxonomy entry this is.
    pub kind: SpanKind,
    /// The node the event happened on ([`NO_NODE`] for network-wide).
    pub node: u32,
    /// The consensus round the event belongs to (0 when not applicable).
    pub round: u64,
    /// Step code within the round (BA⋆ step code; 0 otherwise).
    pub step: u32,
    /// Kind-specific label (`"binary"`, `"vote"`, `"crash"`, …).
    pub label: Cow<'static, str>,
    /// Sim-time start, µs.
    pub start: Micros,
    /// Sim-time end, µs.
    pub end: Micros,
    /// Kind-specific magnitude (bytes, counts, sub-users).
    pub value: u64,
    /// Kind-specific verdict (accepted / on-votes / final).
    pub ok: bool,
    /// Stable causal identity: the gossip message id for hops, verifies
    /// and vote emissions ([`stable_id`]), a deterministic phase span id
    /// ([`span_id`]) for proposal/step/round spans, 0 when the event has
    /// no causal identity.
    pub id: u64,
    /// The id of the message or span that caused this event (0 = none):
    /// the gating vote for a concluded step, the adopted proposal for a
    /// reduction-one vote, the concluding step for a round.
    pub cause: u64,
    /// The other endpoint of a gossip hop (the sending node);
    /// [`NO_NODE`] when not applicable.
    pub peer: u32,
}

impl TraceEvent {
    /// The span's duration.
    pub fn duration(&self) -> Micros {
        self.end.saturating_sub(self.start)
    }
}

/// Truncates a 32-byte content hash (message id, public key, block hash)
/// to the 64-bit causal id used in trace links: the first 8 bytes,
/// little-endian, never 0 (0 is reserved for "no link").
pub fn stable_id(bytes: &[u8; 32]) -> u64 {
    let raw = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
    if raw == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        raw
    }
}

/// A deterministic id for a protocol phase span, computable by both the
/// producer (instrumentation) and the consumer (the causal walker)
/// without coordination: a bit-mix of `(node, round, step, tag)`.
/// Never 0.
pub fn span_id(node: u32, round: u64, step: u32, tag: u8) -> u64 {
    // splitmix64 finalizer over a packed key; tag keeps proposal / step /
    // round namespaces disjoint for the same (node, round).
    let mut z = (round ^ ((node as u64) << 40) ^ ((step as u64) << 8) ^ (tag as u64))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// A live consumer of every recorded event (the invariant monitor).
/// Observers see events *before* the buffer-cap check, so a truncated
/// trace still feeds the full stream to the observer.
pub trait TraceObserver: Send {
    /// Called once per recorded event, in recording order.
    fn observe(&mut self, ev: &TraceEvent);
}

struct Fanout(Vec<Box<dyn TraceObserver>>);

impl TraceObserver for Fanout {
    fn observe(&mut self, ev: &TraceEvent) {
        for obs in &mut self.0 {
            obs.observe(ev);
        }
    }
}

/// Combines observers into one, feeding each every event in order — the
/// tracer has a single observer slot, and the live node needs both the
/// invariant monitor and the flight recorder on it.
pub fn fanout(observers: Vec<Box<dyn TraceObserver>>) -> Box<dyn TraceObserver> {
    Box::new(Fanout(observers))
}

struct Buffer {
    events: Vec<TraceEvent>,
    /// Canonical-order keys assigned by the parallel DES engine, one per
    /// buffered event (see [`Tracer::set_order_hint`]). All zeros in
    /// single-threaded use, where buffer order *is* canonical order.
    hints: Vec<u64>,
    /// The hint stamped onto the next recorded events.
    hint: u64,
    cap: usize,
    dropped: u64,
    observer: Option<Box<dyn TraceObserver>>,
}

/// A cheap, cloneable recording handle. [`Tracer::disabled`] is inert:
/// every recording call on it is a no-op, which is how production paths
/// run untraced at zero cost.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<Buffer>>>);

impl Tracer {
    /// The inert tracer: records nothing.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// A tracer with a bounded in-memory buffer; events past `cap` are
    /// counted as dropped instead of growing memory without bound.
    pub fn bounded(cap: usize) -> Tracer {
        Tracer(Some(Arc::new(Mutex::new(Buffer {
            events: Vec::new(),
            hints: Vec::new(),
            hint: 0,
            cap,
            dropped: 0,
            observer: None,
        }))))
    }

    /// Whether recording does anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches a live observer fed every subsequent event. No-op on a
    /// disabled tracer. A later call replaces the previous observer.
    pub fn set_observer(&self, observer: Box<dyn TraceObserver>) {
        if let Some(buf) = &self.0 {
            buf.lock().expect("trace lock").observer = Some(observer);
        }
    }

    /// Records a complete event.
    pub fn record(&self, ev: TraceEvent) {
        let Some(buf) = &self.0 else { return };
        let mut buf = buf.lock().expect("trace lock");
        if let Some(observer) = buf.observer.as_mut() {
            observer.observe(&ev);
        }
        if buf.events.len() >= buf.cap {
            buf.dropped += 1;
        } else {
            let hint = buf.hint;
            buf.events.push(ev);
            buf.hints.push(hint);
        }
    }

    /// Stamps every subsequently recorded event with `hint`, a canonical
    /// ordering key. The parallel DES engine sets this before handing an
    /// event to a node so per-node buffers can later be merged into the
    /// exact order a single-threaded run would have produced, regardless
    /// of worker count or thread interleaving. Single-threaded users
    /// never call this and rely on buffer order alone.
    pub fn set_order_hint(&self, hint: u64) {
        if let Some(buf) = &self.0 {
            buf.lock().expect("trace lock").hint = hint;
        }
    }

    /// Drains the buffered events together with their order hints,
    /// leaving the cumulative `dropped` count in place. Used by the
    /// parallel DES engine to empty per-node buffers at every barrier.
    pub fn drain_with_hints(&self) -> Vec<(u64, TraceEvent)> {
        let Some(buf) = &self.0 else {
            return Vec::new();
        };
        let mut buf = buf.lock().expect("trace lock");
        let events = std::mem::take(&mut buf.events);
        let hints = std::mem::take(&mut buf.hints);
        hints.into_iter().zip(events).collect()
    }

    /// Opens a span guard at `start`. Builder methods fill in the fields;
    /// [`Span::end_at`] (or [`Span::instant`]) records it. On a disabled
    /// tracer the guard is inert.
    pub fn span(&self, kind: SpanKind, node: u32, round: u64, start: Micros) -> Span {
        Span {
            tracer: self.clone(),
            ev: TraceEvent {
                kind,
                node,
                round,
                step: 0,
                label: Cow::Borrowed(""),
                start,
                end: start,
                value: 0,
                ok: true,
                id: 0,
                cause: 0,
                peer: NO_NODE,
            },
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |b| b.lock().expect("trace lock").events.len())
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |b| b.lock().expect("trace lock").dropped)
    }

    /// A snapshot copy of the buffered events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |b| b.lock().expect("trace lock").events.clone())
    }

    /// A snapshot of at most `max` buffered events starting at buffer
    /// index `cursor`, plus the current buffer length. The buffer keeps
    /// the *first* `cap` events in stable order and is append-only, so
    /// `(cursor, returned.len())` form a resumable drain position: a
    /// later call with `cursor + returned.len()` continues exactly where
    /// this one stopped, and re-reading an old cursor returns the same
    /// prefix bytes. This is what the node's TELEMETRY `TRACE_DRAIN` op
    /// serves.
    pub fn events_from(&self, cursor: usize, max: usize) -> (Vec<TraceEvent>, usize) {
        let Some(buf) = &self.0 else {
            return (Vec::new(), 0);
        };
        let buf = buf.lock().expect("trace lock");
        let total = buf.events.len();
        let lo = cursor.min(total);
        let hi = lo.saturating_add(max).min(total);
        (buf.events[lo..hi].to_vec(), total)
    }

    /// Exports the buffer as JSONL keyed by `(seed, schedule)`; see
    /// [`write_jsonl`].
    pub fn export_jsonl(&self, seed: u64, schedule: &str) -> String {
        write_jsonl(seed, schedule, self.dropped(), &self.events())
    }
}

/// A span under construction. Building is allocation-free for static
/// labels; nothing is recorded until [`Span::end_at`] or
/// [`Span::instant`].
#[must_use = "a span records nothing until end_at()/instant() is called"]
pub struct Span {
    tracer: Tracer,
    ev: TraceEvent,
}

impl Span {
    /// Sets the step code.
    pub fn step(mut self, step: u32) -> Span {
        self.ev.step = step;
        self
    }

    /// Sets the label.
    pub fn label(mut self, label: &'static str) -> Span {
        self.ev.label = Cow::Borrowed(label);
        self
    }

    /// Sets the magnitude.
    pub fn value(mut self, value: u64) -> Span {
        self.ev.value = value;
        self
    }

    /// Sets the verdict flag.
    pub fn ok(mut self, ok: bool) -> Span {
        self.ev.ok = ok;
        self
    }

    /// Sets the event's causal identity.
    pub fn id(mut self, id: u64) -> Span {
        self.ev.id = id;
        self
    }

    /// Sets the causal predecessor link.
    pub fn cause(mut self, cause: u64) -> Span {
        self.ev.cause = cause;
        self
    }

    /// Sets the hop's sending node.
    pub fn peer(mut self, peer: u32) -> Span {
        self.ev.peer = peer;
        self
    }

    /// Closes the span at `end` and records it.
    pub fn end_at(mut self, end: Micros) {
        self.ev.end = end;
        self.tracer.record(self.ev);
    }

    /// Records the span as an instantaneous event (`end = start`).
    pub fn instant(self) {
        let end = self.ev.start;
        self.end_at(end);
    }
}

// --- JSONL export / import ----------------------------------------------------

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serializes a trace as JSONL: a header line keyed by `(seed, schedule)`
/// followed by one event per line, fields in a fixed order — identical
/// runs produce byte-identical output.
pub fn write_jsonl(seed: u64, schedule: &str, dropped: u64, events: &[TraceEvent]) -> String {
    write_jsonl_trimmed(seed, schedule, dropped, 0, events)
}

/// Like [`write_jsonl`], with the per-node-budget `trimmed` count in the
/// header. `dropped` means the buffer overflowed and the trace is
/// unusable for completeness checks; `trimmed` means a configured
/// per-node budget deliberately retained a prefix per node, with the
/// excess accounted here — the retained prefix is still canonical and
/// byte-stable. The field is emitted only when non-zero, so untrimmed
/// exports stay byte-identical to the version-2 format.
pub fn write_jsonl_trimmed(
    seed: u64,
    schedule: &str,
    dropped: u64,
    trimmed: u64,
    events: &[TraceEvent],
) -> String {
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str(&format!(
        "{{\"trace\":\"algorand\",\"version\":2,\"seed\":{seed},\"schedule\":\""
    ));
    escape_into(&mut out, schedule);
    if trimmed > 0 {
        out.push_str(&format!(
            "\",\"events\":{},\"dropped\":{dropped},\"trimmed\":{trimmed}}}\n",
            events.len()
        ));
    } else {
        out.push_str(&format!(
            "\",\"events\":{},\"dropped\":{dropped}}}\n",
            events.len()
        ));
    }
    for ev in events {
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"node\":{},\"peer\":{},\"round\":{},\"step\":{},\"label\":\"",
            ev.kind.as_str(),
            ev.node,
            ev.peer,
            ev.round,
            ev.step
        ));
        escape_into(&mut out, &ev.label);
        out.push_str(&format!(
            "\",\"start\":{},\"end\":{},\"value\":{},\"ok\":{},\"id\":{},\"cause\":{}}}\n",
            ev.start, ev.end, ev.value, ev.ok, ev.id, ev.cause
        ));
    }
    out
}

/// A parsed trace artifact.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The run's seed (from the header).
    pub seed: u64,
    /// The run's schedule name (from the header).
    pub schedule: String,
    /// Events dropped at record time (buffer cap).
    pub dropped: u64,
    /// Events deliberately trimmed by a per-node budget (the retained
    /// prefix per node is complete and canonical; see
    /// [`write_jsonl_trimmed`]).
    pub trimmed: u64,
    /// The recorded events, in recording order.
    pub events: Vec<TraceEvent>,
}

pub(crate) fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    // Walk to the value's terminating ',' or '}', honoring escaped
    // quotes — a `\"` inside a string value must not close it.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == ',' || c == '}' {
            return Some(&rest[..i]);
        }
    }
    None
}

pub(crate) fn field_u64(line: &str, key: &str) -> Result<u64, String> {
    field_raw(line, key)
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| format!("missing or bad field {key:?} in {line:?}"))
}

/// Like [`field_u64`] but tolerates an absent key (version-1 traces
/// predate the causal fields).
fn field_u64_or(line: &str, key: &str, default: u64) -> Result<u64, String> {
    match field_raw(line, key) {
        None => Ok(default),
        Some(s) => s
            .trim()
            .parse()
            .map_err(|_| format!("bad field {key:?} in {line:?}")),
    }
}

pub(crate) fn field_str(line: &str, key: &str) -> Result<String, String> {
    let raw = field_raw(line, key).ok_or_else(|| format!("missing field {key:?} in {line:?}"))?;
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string in {line:?}"))?;
    // Inverse of `escape_into`: one left-to-right pass, so a literal
    // backslash followed by 'n' can't be confused with an `\n` escape.
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| format!("bad \\u escape in field {key:?} of {line:?}"))?;
                out.push(code);
            }
            other => return Err(format!("bad escape {other:?} in field {key:?} of {line:?}")),
        }
    }
    Ok(out)
}

/// Parses the JSONL produced by [`write_jsonl`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_jsonl(input: &str) -> Result<Trace, String> {
    let mut lines = input.lines();
    let header = lines.next().ok_or("empty trace")?;
    if field_str(header, "trace")? != "algorand" {
        return Err("not an algorand trace".into());
    }
    let mut trace = Trace {
        seed: field_u64(header, "seed")?,
        schedule: field_str(header, "schedule")?,
        dropped: field_u64(header, "dropped")?,
        trimmed: field_u64_or(header, "trimmed", 0)?,
        events: Vec::new(),
    };
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let kind_name = field_str(line, "kind")?;
        let kind =
            SpanKind::parse(&kind_name).ok_or_else(|| format!("unknown kind {kind_name:?}"))?;
        trace.events.push(TraceEvent {
            kind,
            node: field_u64(line, "node")? as u32,
            round: field_u64(line, "round")?,
            step: field_u64(line, "step")? as u32,
            label: Cow::Owned(field_str(line, "label")?),
            start: field_u64(line, "start")?,
            end: field_u64(line, "end")?,
            value: field_u64(line, "value")?,
            ok: field_raw(line, "ok").map(str::trim) == Some("true"),
            id: field_u64_or(line, "id", 0)?,
            cause: field_u64_or(line, "cause", 0)?,
            peer: field_u64_or(line, "peer", NO_NODE as u64)? as u32,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, node: u32, start: Micros, end: Micros) -> TraceEvent {
        TraceEvent {
            kind,
            node,
            round: 3,
            step: 2,
            label: Cow::Borrowed("binary"),
            start,
            end,
            value: 17,
            ok: true,
            id: 0xdead_beef,
            cause: 7,
            peer: 4,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.span(SpanKind::Round, 1, 1, 0).label("final").end_at(10);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert!(t.export_jsonl(1, "none").starts_with("{\"trace\""));
    }

    #[test]
    fn span_guard_records_on_end() {
        let t = Tracer::bounded(16);
        t.span(SpanKind::BaStep, 4, 3, 100)
            .step(2)
            .label("binary")
            .value(17)
            .ok(true)
            .end_at(250);
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].duration(), 150);
        assert_eq!(evs[0].label, "binary");
    }

    #[test]
    fn buffer_bounds_and_counts_drops() {
        let t = Tracer::bounded(2);
        for i in 0..5u64 {
            t.span(SpanKind::Verify, 0, 1, i).instant();
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let parsed = parse_jsonl(&t.export_jsonl(9, "s")).unwrap();
        assert_eq!(parsed.dropped, 3);
        assert_eq!(parsed.events.len(), 2);
    }

    #[test]
    fn jsonl_roundtrips() {
        let events = vec![
            ev(SpanKind::Round, 0, 0, 5_000_000),
            ev(SpanKind::GossipHop, NO_NODE, 10, 20),
            TraceEvent {
                label: Cow::Borrowed("odd \"label\"\\with\nescapes"),
                ..ev(SpanKind::Fault, 7, 1, 1)
            },
        ];
        let text = write_jsonl(42, "crash_restart", 1, &events);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.schedule, "crash_restart");
        assert_eq!(parsed.dropped, 1);
        assert_eq!(parsed.events, events);
    }

    #[test]
    fn export_is_byte_stable() {
        let record = || {
            let t = Tracer::bounded(8);
            t.span(SpanKind::Catchup, 3, 9, 77)
                .label("apply")
                .value(4)
                .end_at(80);
            t.export_jsonl(7, "x")
        };
        assert_eq!(record(), record());
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in [
            SpanKind::Round,
            SpanKind::Proposal,
            SpanKind::BaStep,
            SpanKind::Sortition,
            SpanKind::Verify,
            SpanKind::Tally,
            SpanKind::GossipHop,
            SpanKind::Catchup,
            SpanKind::Fault,
        ] {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }

    #[test]
    fn version1_lines_parse_with_default_causal_fields() {
        let v1 = "{\"trace\":\"algorand\",\"version\":1,\"seed\":3,\"schedule\":\"s\",\"events\":1,\"dropped\":0}\n\
                  {\"kind\":\"verify\",\"node\":2,\"round\":5,\"step\":1,\"label\":\"vote\",\"start\":10,\"end\":10,\"value\":0,\"ok\":true}\n";
        let parsed = parse_jsonl(v1).unwrap();
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.events[0].id, 0);
        assert_eq!(parsed.events[0].cause, 0);
        assert_eq!(parsed.events[0].peer, NO_NODE);
    }

    #[test]
    fn causal_ids_are_stable_and_nonzero() {
        assert_ne!(stable_id(&[0u8; 32]), 0);
        assert_eq!(stable_id(&[9u8; 32]), stable_id(&[9u8; 32]));
        assert_ne!(span_id(1, 2, 3, 1), 0);
        assert_eq!(span_id(1, 2, 3, 1), span_id(1, 2, 3, 1));
        assert_ne!(span_id(1, 2, 3, 1), span_id(1, 2, 3, 2));
        assert_ne!(span_id(1, 2, 3, 1), span_id(2, 2, 3, 1));
    }

    #[test]
    fn order_hints_stamp_and_drain() {
        let t = Tracer::bounded(16);
        t.set_order_hint(7);
        t.span(SpanKind::Verify, 0, 1, 10).instant();
        t.set_order_hint(3);
        t.span(SpanKind::Verify, 0, 1, 20).instant();
        let drained = t.drain_with_hints();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 7);
        assert_eq!(drained[1].0, 3);
        // The buffer is empty afterwards; dropped stays cumulative.
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        t.span(SpanKind::Verify, 0, 1, 30).instant();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn trimmed_header_roundtrips_and_defaults_to_zero() {
        let events = vec![ev(SpanKind::Round, 0, 0, 5)];
        let with = write_jsonl_trimmed(1, "s", 0, 9, &events);
        let parsed = parse_jsonl(&with).unwrap();
        assert_eq!(parsed.trimmed, 9);
        assert_eq!(parsed.dropped, 0);
        // Untrimmed exports keep the exact version-2 header bytes.
        let without = write_jsonl_trimmed(1, "s", 0, 0, &events);
        assert_eq!(without, write_jsonl(1, "s", 0, &events));
        assert_eq!(parse_jsonl(&without).unwrap().trimmed, 0);
    }

    #[test]
    fn cursor_reads_are_resumable_and_stable() {
        let t = Tracer::bounded(16);
        for i in 0..10u64 {
            t.span(SpanKind::Verify, 0, i, i).instant();
        }
        let (chunk1, total1) = t.events_from(0, 4);
        assert_eq!((chunk1.len(), total1), (4, 10));
        // More events arrive between reads; the old range re-reads
        // identically (append-only, first-N retention).
        for i in 10..13u64 {
            t.span(SpanKind::Verify, 0, i, i).instant();
        }
        let (again, total2) = t.events_from(0, 4);
        assert_eq!(again, chunk1);
        assert_eq!(total2, 13);
        // Resuming from the previous position drains the rest.
        let (rest, _) = t.events_from(4, usize::MAX);
        assert_eq!(rest.len(), 9);
        assert_eq!(rest[0].round, 4);
        // Past-the-end and disabled tracers return empty.
        assert_eq!(t.events_from(99, 4).0.len(), 0);
        assert_eq!(Tracer::disabled().events_from(0, 4), (Vec::new(), 0));
    }

    #[test]
    fn observer_sees_events_past_the_buffer_cap() {
        struct Counter(Arc<Mutex<u64>>);
        impl TraceObserver for Counter {
            fn observe(&mut self, _ev: &TraceEvent) {
                *self.0.lock().unwrap() += 1;
            }
        }
        let seen = Arc::new(Mutex::new(0u64));
        let t = Tracer::bounded(2);
        t.set_observer(Box::new(Counter(seen.clone())));
        for i in 0..5u64 {
            t.span(SpanKind::Verify, 0, 1, i).instant();
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(*seen.lock().unwrap(), 5);
    }
}
