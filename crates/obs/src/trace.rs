//! Structured trace spans with a bounded in-memory buffer and byte-stable
//! JSONL export.
//!
//! Every span carries the same shape: a [`SpanKind`] from the fixed
//! taxonomy (round, BA⋆ step, sortition, verify, gossip hop, catch-up,
//! fault), the node id, the round, an optional step code, sim-time start
//! and end, a free `value` (bytes, counts), and an `ok` flag whose meaning
//! is kind-specific (verification verdict, votes-vs-timeout, final-vs-
//! tentative).
//!
//! Determinism: recording only *reads* values the simulation already
//! computed — it never draws randomness, never reorders events, and the
//! instrumented hot paths are no-ops when the tracer is disabled. All
//! recording happens from the single-threaded simulation loop, so the
//! buffer order is a pure function of `(seed, schedule)` and the export is
//! byte-stable — the property the CI trace-determinism gate asserts.

use std::borrow::Cow;
use std::sync::{Arc, Mutex};

/// Virtual time in microseconds (the simulator's clock).
pub type Micros = u64;

/// Node id used for network-wide events (faults that target no node).
pub const NO_NODE: u32 = u32::MAX;

/// The span taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// One completed consensus round on one node (start of proposal wait
    /// to block append). `step` is the concluding BinaryBA⋆ step, `value`
    /// the agreed block's wire size, `ok` whether consensus was final.
    Round,
    /// The block-proposal portion of a round (priority wait + block wait).
    Proposal,
    /// One concluded BA⋆ phase (reduction 1/2, a BinaryBA⋆ step, or the
    /// final count). `ok` = concluded on votes (false = timeout).
    BaStep,
    /// A sortition selection (proposer or committee). `value` = sub-user
    /// count for committee selections.
    Sortition,
    /// One verification-stage verdict. `ok` = accepted.
    Verify,
    /// One gossip hop of a block body (send start to arrival), or a
    /// per-node `uplink_total`/`downlink_total` summary. `value` = bytes.
    GossipHop,
    /// Catch-up activity: `request`, `apply`, or `watchdog` (see labels).
    Catchup,
    /// A scripted fault application or a recovery-protocol milestone.
    Fault,
}

impl SpanKind {
    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Round => "round",
            SpanKind::Proposal => "proposal",
            SpanKind::BaStep => "ba_step",
            SpanKind::Sortition => "sortition",
            SpanKind::Verify => "verify",
            SpanKind::GossipHop => "gossip_hop",
            SpanKind::Catchup => "catchup",
            SpanKind::Fault => "fault",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<SpanKind> {
        Some(match s {
            "round" => SpanKind::Round,
            "proposal" => SpanKind::Proposal,
            "ba_step" => SpanKind::BaStep,
            "sortition" => SpanKind::Sortition,
            "verify" => SpanKind::Verify,
            "gossip_hop" => SpanKind::GossipHop,
            "catchup" => SpanKind::Catchup,
            "fault" => SpanKind::Fault,
            _ => return None,
        })
    }
}

/// One recorded span (or instantaneous event, when `start == end`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Which taxonomy entry this is.
    pub kind: SpanKind,
    /// The node the event happened on ([`NO_NODE`] for network-wide).
    pub node: u32,
    /// The consensus round the event belongs to (0 when not applicable).
    pub round: u64,
    /// Step code within the round (BA⋆ step code; 0 otherwise).
    pub step: u32,
    /// Kind-specific label (`"binary"`, `"vote"`, `"crash"`, …).
    pub label: Cow<'static, str>,
    /// Sim-time start, µs.
    pub start: Micros,
    /// Sim-time end, µs.
    pub end: Micros,
    /// Kind-specific magnitude (bytes, counts, sub-users).
    pub value: u64,
    /// Kind-specific verdict (accepted / on-votes / final).
    pub ok: bool,
}

impl TraceEvent {
    /// The span's duration.
    pub fn duration(&self) -> Micros {
        self.end.saturating_sub(self.start)
    }
}

struct Buffer {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

/// A cheap, cloneable recording handle. [`Tracer::disabled`] is inert:
/// every recording call on it is a no-op, which is how production paths
/// run untraced at zero cost.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<Buffer>>>);

impl Tracer {
    /// The inert tracer: records nothing.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// A tracer with a bounded in-memory buffer; events past `cap` are
    /// counted as dropped instead of growing memory without bound.
    pub fn bounded(cap: usize) -> Tracer {
        Tracer(Some(Arc::new(Mutex::new(Buffer {
            events: Vec::new(),
            cap,
            dropped: 0,
        }))))
    }

    /// Whether recording does anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records a complete event.
    pub fn record(&self, ev: TraceEvent) {
        let Some(buf) = &self.0 else { return };
        let mut buf = buf.lock().expect("trace lock");
        if buf.events.len() >= buf.cap {
            buf.dropped += 1;
        } else {
            buf.events.push(ev);
        }
    }

    /// Opens a span guard at `start`. Builder methods fill in the fields;
    /// [`Span::end_at`] (or [`Span::instant`]) records it. On a disabled
    /// tracer the guard is inert.
    pub fn span(&self, kind: SpanKind, node: u32, round: u64, start: Micros) -> Span {
        Span {
            tracer: self.clone(),
            ev: TraceEvent {
                kind,
                node,
                round,
                step: 0,
                label: Cow::Borrowed(""),
                start,
                end: start,
                value: 0,
                ok: true,
            },
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |b| b.lock().expect("trace lock").events.len())
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |b| b.lock().expect("trace lock").dropped)
    }

    /// A snapshot copy of the buffered events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |b| b.lock().expect("trace lock").events.clone())
    }

    /// Exports the buffer as JSONL keyed by `(seed, schedule)`; see
    /// [`write_jsonl`].
    pub fn export_jsonl(&self, seed: u64, schedule: &str) -> String {
        write_jsonl(seed, schedule, self.dropped(), &self.events())
    }
}

/// A span under construction. Building is allocation-free for static
/// labels; nothing is recorded until [`Span::end_at`] or
/// [`Span::instant`].
#[must_use = "a span records nothing until end_at()/instant() is called"]
pub struct Span {
    tracer: Tracer,
    ev: TraceEvent,
}

impl Span {
    /// Sets the step code.
    pub fn step(mut self, step: u32) -> Span {
        self.ev.step = step;
        self
    }

    /// Sets the label.
    pub fn label(mut self, label: &'static str) -> Span {
        self.ev.label = Cow::Borrowed(label);
        self
    }

    /// Sets the magnitude.
    pub fn value(mut self, value: u64) -> Span {
        self.ev.value = value;
        self
    }

    /// Sets the verdict flag.
    pub fn ok(mut self, ok: bool) -> Span {
        self.ev.ok = ok;
        self
    }

    /// Closes the span at `end` and records it.
    pub fn end_at(mut self, end: Micros) {
        self.ev.end = end;
        self.tracer.record(self.ev);
    }

    /// Records the span as an instantaneous event (`end = start`).
    pub fn instant(self) {
        let end = self.ev.start;
        self.end_at(end);
    }
}

// --- JSONL export / import ----------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serializes a trace as JSONL: a header line keyed by `(seed, schedule)`
/// followed by one event per line, fields in a fixed order — identical
/// runs produce byte-identical output.
pub fn write_jsonl(seed: u64, schedule: &str, dropped: u64, events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str(&format!(
        "{{\"trace\":\"algorand\",\"version\":1,\"seed\":{seed},\"schedule\":\""
    ));
    escape_into(&mut out, schedule);
    out.push_str(&format!(
        "\",\"events\":{},\"dropped\":{dropped}}}\n",
        events.len()
    ));
    for ev in events {
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"node\":{},\"round\":{},\"step\":{},\"label\":\"",
            ev.kind.as_str(),
            ev.node,
            ev.round,
            ev.step
        ));
        escape_into(&mut out, &ev.label);
        out.push_str(&format!(
            "\",\"start\":{},\"end\":{},\"value\":{},\"ok\":{}}}\n",
            ev.start, ev.end, ev.value, ev.ok
        ));
    }
    out
}

/// A parsed trace artifact.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The run's seed (from the header).
    pub seed: u64,
    /// The run's schedule name (from the header).
    pub schedule: String,
    /// Events dropped at record time (buffer cap).
    pub dropped: u64,
    /// The recorded events, in recording order.
    pub events: Vec<TraceEvent>,
}

fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            if c == '"' {
                *in_str = !*in_str;
            }
            if !*in_str && (c == ',' || c == '}') {
                Some(Some(i))
            } else {
                Some(None)
            }
        })
        .flatten()
        .next()?;
    Some(&rest[..end])
}

fn field_u64(line: &str, key: &str) -> Result<u64, String> {
    field_raw(line, key)
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| format!("missing or bad field {key:?} in {line:?}"))
}

fn field_str(line: &str, key: &str) -> Result<String, String> {
    let raw = field_raw(line, key).ok_or_else(|| format!("missing field {key:?} in {line:?}"))?;
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string in {line:?}"))?;
    // The writer only escapes quote/backslash/newline/control chars.
    Ok(inner
        .replace("\\n", "\n")
        .replace("\\\"", "\"")
        .replace("\\\\", "\\"))
}

/// Parses the JSONL produced by [`write_jsonl`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_jsonl(input: &str) -> Result<Trace, String> {
    let mut lines = input.lines();
    let header = lines.next().ok_or("empty trace")?;
    if field_str(header, "trace")? != "algorand" {
        return Err("not an algorand trace".into());
    }
    let mut trace = Trace {
        seed: field_u64(header, "seed")?,
        schedule: field_str(header, "schedule")?,
        dropped: field_u64(header, "dropped")?,
        events: Vec::new(),
    };
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let kind_name = field_str(line, "kind")?;
        let kind =
            SpanKind::parse(&kind_name).ok_or_else(|| format!("unknown kind {kind_name:?}"))?;
        trace.events.push(TraceEvent {
            kind,
            node: field_u64(line, "node")? as u32,
            round: field_u64(line, "round")?,
            step: field_u64(line, "step")? as u32,
            label: Cow::Owned(field_str(line, "label")?),
            start: field_u64(line, "start")?,
            end: field_u64(line, "end")?,
            value: field_u64(line, "value")?,
            ok: field_raw(line, "ok").map(str::trim) == Some("true"),
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, node: u32, start: Micros, end: Micros) -> TraceEvent {
        TraceEvent {
            kind,
            node,
            round: 3,
            step: 2,
            label: Cow::Borrowed("binary"),
            start,
            end,
            value: 17,
            ok: true,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.span(SpanKind::Round, 1, 1, 0).label("final").end_at(10);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert!(t.export_jsonl(1, "none").starts_with("{\"trace\""));
    }

    #[test]
    fn span_guard_records_on_end() {
        let t = Tracer::bounded(16);
        t.span(SpanKind::BaStep, 4, 3, 100)
            .step(2)
            .label("binary")
            .value(17)
            .ok(true)
            .end_at(250);
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].duration(), 150);
        assert_eq!(evs[0].label, "binary");
    }

    #[test]
    fn buffer_bounds_and_counts_drops() {
        let t = Tracer::bounded(2);
        for i in 0..5u64 {
            t.span(SpanKind::Verify, 0, 1, i).instant();
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let parsed = parse_jsonl(&t.export_jsonl(9, "s")).unwrap();
        assert_eq!(parsed.dropped, 3);
        assert_eq!(parsed.events.len(), 2);
    }

    #[test]
    fn jsonl_roundtrips() {
        let events = vec![
            ev(SpanKind::Round, 0, 0, 5_000_000),
            ev(SpanKind::GossipHop, NO_NODE, 10, 20),
            TraceEvent {
                label: Cow::Borrowed("odd \"label\"\\with\nescapes"),
                ..ev(SpanKind::Fault, 7, 1, 1)
            },
        ];
        let text = write_jsonl(42, "crash_restart", 1, &events);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.schedule, "crash_restart");
        assert_eq!(parsed.dropped, 1);
        assert_eq!(parsed.events, events);
    }

    #[test]
    fn export_is_byte_stable() {
        let record = || {
            let t = Tracer::bounded(8);
            t.span(SpanKind::Catchup, 3, 9, 77)
                .label("apply")
                .value(4)
                .end_at(80);
            t.export_jsonl(7, "x")
        };
        assert_eq!(record(), record());
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in [
            SpanKind::Round,
            SpanKind::Proposal,
            SpanKind::BaStep,
            SpanKind::Sortition,
            SpanKind::Verify,
            SpanKind::GossipHop,
            SpanKind::Catchup,
            SpanKind::Fault,
        ] {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }
}
