//! Online protocol-invariant monitor fed from the live trace stream.
//!
//! Formal-verification work checks Algorand's safety invariants offline
//! on abstract models; this module runs the same checks *online* against
//! the real implementation: attach a [`MonitorHandle`]'s observer to the
//! run's [`crate::Tracer`] and every recorded event is checked as it
//! happens (observers run before the buffer cap, so a truncated trace
//! still feeds the monitor the full stream).
//!
//! Checked invariants:
//!
//! 1. **No conflicting certificates** — no two *final* certificates for
//!    the same round carry different blocks (BA⋆ safety; tentative forks
//!    are legal under partition, §8.2, and only counted).
//! 2. **Committee bounds** — the network-wide deduplicated sub-user
//!    weight of every `(round, step)` committee stays under the binomial
//!    upper tail for the configured τ (§7.5). Only the upper tail is
//!    enforced: crashed or partitioned voters legitimately shrink the
//!    *observed* committee.
//! 3. **Seed-chain validity** — every appended block's seed verifies
//!    against the previous seed (VRF proposal or hash fallback, §5.2),
//!    and all nodes agree on a block's seed.
//! 4. **Vote accounting** — no `(voter, round, step)` is counted twice
//!    into any one node's tally (§8.4's one-vote rule), and a voter's
//!    sortition weight `j` is consistent across all observers.
//! 5. **FutureVotes staleness** — parked votes stay within the
//!    far-future window and the buffer occupancy bound.
//!
//! Scope: checks apply to events from *honest* nodes (ids below
//! [`MonitorConfig::honest_nodes`]); Byzantine nodes may claim anything.
//! Recovery-protocol engines carry no causal stamps and are excluded
//! from vote accounting by construction.

use crate::trace::{SpanKind, TraceEvent, TraceObserver};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// How many rounds of committee / dedup state to retain behind the
/// latest observed round.
const RETAIN_ROUNDS: u64 = 16;
/// How many individual violations to keep verbatim (counters are exact).
const MAX_STORED: usize = 64;

/// The invariant classes the monitor enforces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Invariant {
    /// Two final certificates for one round with different blocks.
    ConflictingCertificates,
    /// A committee's deduplicated weight exceeded the binomial tail
    /// bound, or one voter reported inconsistent sortition weights.
    CommitteeBound,
    /// A block's seed failed verification, or nodes disagree on a
    /// block's seed.
    SeedChain,
    /// A `(voter, round, step)` triple entered one node's tally twice.
    VoteDoubleCount,
    /// A future vote parked beyond the window or past the buffer bound.
    FutureStaleness,
}

impl Invariant {
    /// All classes, in report order.
    pub const ALL: [Invariant; 5] = [
        Invariant::ConflictingCertificates,
        Invariant::CommitteeBound,
        Invariant::SeedChain,
        Invariant::VoteDoubleCount,
        Invariant::FutureStaleness,
    ];

    /// The class's report name.
    pub fn as_str(self) -> &'static str {
        match self {
            Invariant::ConflictingCertificates => "conflicting_certificates",
            Invariant::CommitteeBound => "committee_bound",
            Invariant::SeedChain => "seed_chain",
            Invariant::VoteDoubleCount => "vote_double_count",
            Invariant::FutureStaleness => "future_staleness",
        }
    }

    fn index(self) -> usize {
        Invariant::ALL
            .iter()
            .position(|i| *i == self)
            .expect("listed")
    }
}

/// One flagged violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// The round it broke in.
    pub round: u64,
    /// The node whose event exposed it.
    pub node: u32,
    /// Human-readable specifics.
    pub detail: String,
}

/// Static bounds the checks run against, computed by the harness from
/// the run's protocol parameters (the monitor itself stays math-free).
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Upper tail bound on a step committee's total sub-user weight.
    pub committee_hi_step: u64,
    /// Upper tail bound on the final committee's total sub-user weight.
    pub committee_hi_final: u64,
    /// Largest allowed `vote.round − current_round` for a parked vote.
    pub max_future_gap: u32,
    /// Largest allowed FutureVotes buffer occupancy.
    pub max_future_buffer: u64,
    /// Nodes `0..honest_nodes` are honest; events from others are
    /// counted but not violation-checked.
    pub honest_nodes: u32,
}

#[derive(Default)]
struct RoundState {
    /// Per step: network-wide deduplicated voter → sortition weight.
    committees: HashMap<u32, HashMap<u64, u64>>,
    /// Per step: running committee weight (sum of the map above).
    weights: HashMap<u32, u64>,
    /// Per (node, step): voters already counted into that node's tally.
    tallied: HashMap<(u32, u32), HashSet<u64>>,
}

/// Live observation counters — nonzero values prove the checks actually
/// saw traffic (the vacuity guard the CI suite asserts on).
#[derive(Clone, Copy, Default, Debug)]
pub struct Observed {
    /// Round conclusions checked (final + tentative).
    pub certificates: u64,
    /// Tally-add events checked.
    pub tally_adds: u64,
    /// Seed verdicts checked.
    pub seeds: u64,
    /// Future-vote parks checked.
    pub future_parks: u64,
    /// Largest deduplicated committee weight seen on any (round, step).
    pub max_committee: u64,
    /// Tentative (non-final) conflicting conclusions seen — legal under
    /// partition, reported for context.
    pub tentative_conflicts: u64,
}

/// The online checker. Feed it via [`MonitorHandle`] or call
/// [`InvariantMonitor::observe`] directly on parsed events.
pub struct InvariantMonitor {
    cfg: MonitorConfig,
    finalized: HashMap<u64, u64>,
    tentative: HashMap<u64, u64>,
    rounds: BTreeMap<u64, RoundState>,
    seeds: HashMap<(u64, u64), u64>,
    max_round: u64,
    observed: Observed,
    counts: [u64; 5],
    stored: Vec<Violation>,
}

impl InvariantMonitor {
    /// A monitor with everything unobserved.
    pub fn new(cfg: MonitorConfig) -> InvariantMonitor {
        InvariantMonitor {
            cfg,
            finalized: HashMap::new(),
            tentative: HashMap::new(),
            rounds: BTreeMap::new(),
            seeds: HashMap::new(),
            max_round: 0,
            observed: Observed::default(),
            counts: [0; 5],
            stored: Vec::new(),
        }
    }

    fn flag(&mut self, invariant: Invariant, round: u64, node: u32, detail: String) {
        self.counts[invariant.index()] += 1;
        if self.stored.len() < MAX_STORED {
            self.stored.push(Violation {
                invariant,
                round,
                node,
                detail,
            });
        }
    }

    fn committee_hi(&self, step: u32) -> u64 {
        // Step code 0 is the final count (`StepKind::Final`); every other
        // code is a reduction or BinaryBA⋆ step committee.
        if step == 0 {
            self.cfg.committee_hi_final
        } else {
            self.cfg.committee_hi_step
        }
    }

    /// Checks one event. Order-sensitive state (restart slates, pruning)
    /// assumes recording order, which the live observer guarantees.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match ev.kind {
            SpanKind::Round if ev.label == "final" || ev.label == "tentative" => {
                self.observe_round(ev)
            }
            SpanKind::Verify if ev.label == "seed" => self.observe_seed(ev),
            SpanKind::Tally if ev.label == "add" => self.observe_tally(ev),
            SpanKind::Tally if ev.label == "future" => self.observe_future(ev),
            SpanKind::Fault if ev.label == "restart" => {
                // A restarted node rebuilds its engines from its snapshot
                // and legitimately re-tallies rounds it had in flight:
                // reset its per-node vote-accounting slate.
                for state in self.rounds.values_mut() {
                    state.tallied.retain(|(node, _), _| *node != ev.node);
                }
            }
            _ => {}
        }
    }

    fn note_round(&mut self, round: u64) {
        if round > self.max_round {
            self.max_round = round;
            let cutoff = self.max_round.saturating_sub(RETAIN_ROUNDS);
            self.rounds = self.rounds.split_off(&cutoff);
        }
    }

    fn observe_round(&mut self, ev: &TraceEvent) {
        self.observed.certificates += 1;
        self.note_round(ev.round);
        if ev.node >= self.cfg.honest_nodes || ev.id == 0 {
            return;
        }
        if ev.ok {
            match self.finalized.get(&ev.round) {
                Some(&prev) if prev != ev.id => self.flag(
                    Invariant::ConflictingCertificates,
                    ev.round,
                    ev.node,
                    format!("final certificates for blocks {:#x} and {:#x}", prev, ev.id),
                ),
                Some(_) => {}
                None => {
                    self.finalized.insert(ev.round, ev.id);
                }
            }
        } else {
            match self.tentative.get(&ev.round) {
                Some(&prev) if prev != ev.id => self.observed.tentative_conflicts += 1,
                Some(_) => {}
                None => {
                    self.tentative.insert(ev.round, ev.id);
                }
            }
        }
    }

    fn observe_seed(&mut self, ev: &TraceEvent) {
        self.observed.seeds += 1;
        if ev.node >= self.cfg.honest_nodes || ev.id == 0 {
            return;
        }
        if !ev.ok {
            self.flag(
                Invariant::SeedChain,
                ev.round,
                ev.node,
                format!("seed of block {:#x} failed verification", ev.id),
            );
        }
        match self.seeds.get(&(ev.round, ev.id)) {
            Some(&prev) if prev != ev.value => self.flag(
                Invariant::SeedChain,
                ev.round,
                ev.node,
                format!(
                    "block {:#x} seen with seeds {:#x} and {:#x}",
                    ev.id, prev, ev.value
                ),
            ),
            Some(_) => {}
            None => {
                self.seeds.insert((ev.round, ev.id), ev.value);
            }
        }
    }

    fn observe_tally(&mut self, ev: &TraceEvent) {
        self.observed.tally_adds += 1;
        self.note_round(ev.round);
        if ev.node >= self.cfg.honest_nodes || ev.cause == 0 {
            return;
        }
        if ev.round < self.max_round.saturating_sub(RETAIN_ROUNDS) {
            return; // slate already pruned; skip rather than miscount
        }
        let hi = self.committee_hi(ev.step);
        let voter = ev.cause;
        let state = self.rounds.entry(ev.round).or_default();
        // (4) per-node double-count.
        if !state
            .tallied
            .entry((ev.node, ev.step))
            .or_default()
            .insert(voter)
        {
            self.flag(
                Invariant::VoteDoubleCount,
                ev.round,
                ev.node,
                format!("voter {voter:#x} tallied twice at step {:#x}", ev.step),
            );
            return;
        }
        // (2) network-wide committee weight, deduplicated by voter.
        let step_committee = state.committees.entry(ev.step).or_default();
        match step_committee.get(&voter) {
            Some(&j) if j != ev.value => {
                self.flag(
                    Invariant::CommitteeBound,
                    ev.round,
                    ev.node,
                    format!(
                        "voter {voter:#x} weight {} vs {} at step {:#x}",
                        ev.value, j, ev.step
                    ),
                );
            }
            Some(_) => {}
            None => {
                step_committee.insert(voter, ev.value);
                let w = state.weights.entry(ev.step).or_insert(0);
                *w += ev.value;
                if *w > self.observed.max_committee {
                    self.observed.max_committee = *w;
                }
                if *w > hi {
                    let w = *w;
                    self.flag(
                        Invariant::CommitteeBound,
                        ev.round,
                        ev.node,
                        format!("committee weight {w} > bound {hi} at step {:#x}", ev.step),
                    );
                }
            }
        }
    }

    fn observe_future(&mut self, ev: &TraceEvent) {
        self.observed.future_parks += 1;
        if ev.node >= self.cfg.honest_nodes {
            return;
        }
        if ev.step > self.cfg.max_future_gap {
            self.flag(
                Invariant::FutureStaleness,
                ev.round,
                ev.node,
                format!(
                    "vote parked {} rounds ahead (window {})",
                    ev.step, self.cfg.max_future_gap
                ),
            );
        }
        if ev.value > self.cfg.max_future_buffer {
            self.flag(
                Invariant::FutureStaleness,
                ev.round,
                ev.node,
                format!(
                    "future buffer at {} (bound {})",
                    ev.value, self.cfg.max_future_buffer
                ),
            );
        }
    }

    /// The checked-stream summary.
    pub fn report(&self) -> MonitorReport {
        MonitorReport {
            observed: self.observed,
            counts: Invariant::ALL.map(|i| (i, self.counts[i.index()])),
            violations: self.stored.clone(),
        }
    }
}

/// A point-in-time summary of the monitor's state.
#[derive(Clone, Debug)]
pub struct MonitorReport {
    /// What the checks saw (vacuity guard).
    pub observed: Observed,
    /// Exact violation count per invariant class.
    pub counts: [(Invariant, u64); 5],
    /// The first [`MAX_STORED`] violations, verbatim.
    pub violations: Vec<Violation>,
}

impl MonitorReport {
    /// Total violations across all classes.
    pub fn total_violations(&self) -> u64 {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Violations of one class.
    pub fn count(&self, invariant: Invariant) -> u64 {
        self.counts[invariant.index()].1
    }

    /// The first invariant class (in [`Invariant::ALL`] order) with a
    /// nonzero count, or `None` for a clean report. Automated oracles
    /// (the schedule fuzzer) classify a failing run by this.
    pub fn verdict_class(&self) -> Option<Invariant> {
        self.counts
            .iter()
            .find(|(_, n)| *n > 0)
            .map(|(inv, _)| *inv)
    }

    /// A machine-readable one-line summary with a fixed field order.
    /// Byte-stable for identical reports, so campaign logs built from it
    /// diff cleanly across reruns.
    pub fn machine_line(&self) -> String {
        let mut line = format!(
            "monitor total={} certs={} tallies={} seeds={} parks={} max_committee={} tentative_conflicts={}",
            self.total_violations(),
            self.observed.certificates,
            self.observed.tally_adds,
            self.observed.seeds,
            self.observed.future_parks,
            self.observed.max_committee,
            self.observed.tentative_conflicts,
        );
        for (inv, n) in self.counts {
            line.push_str(&format!(" {}={}", inv.as_str(), n));
        }
        line
    }
}

impl fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant monitor: {} violation(s) | checked {} certs, {} tally adds, {} seeds, {} future parks | max committee {} | tentative conflicts {}",
            self.total_violations(),
            self.observed.certificates,
            self.observed.tally_adds,
            self.observed.seeds,
            self.observed.future_parks,
            self.observed.max_committee,
            self.observed.tentative_conflicts,
        )?;
        for (inv, n) in self.counts {
            writeln!(f, "  {:<26} {}", inv.as_str(), n)?;
        }
        for v in &self.violations {
            writeln!(
                f,
                "  VIOLATION [{}] round {} node {}: {}",
                v.invariant.as_str(),
                v.round,
                v.node,
                v.detail
            )?;
        }
        Ok(())
    }
}

/// A cloneable, shareable monitor: one half feeds the tracer's observer
/// slot, the other is queried for the report after the run.
#[derive(Clone)]
pub struct MonitorHandle(Arc<Mutex<InvariantMonitor>>);

impl MonitorHandle {
    /// Wraps a fresh monitor.
    pub fn new(cfg: MonitorConfig) -> MonitorHandle {
        MonitorHandle(Arc::new(Mutex::new(InvariantMonitor::new(cfg))))
    }

    /// An observer to attach via [`crate::Tracer::set_observer`].
    pub fn observer(&self) -> Box<dyn TraceObserver> {
        struct Feed(Arc<Mutex<InvariantMonitor>>);
        impl TraceObserver for Feed {
            fn observe(&mut self, ev: &TraceEvent) {
                self.0.lock().expect("monitor lock").observe(ev);
            }
        }
        Box::new(Feed(self.0.clone()))
    }

    /// The current summary.
    pub fn report(&self) -> MonitorReport {
        self.0.lock().expect("monitor lock").report()
    }
}

/// Deliberate violation injection: feeds one synthetic violating stream
/// per invariant class into a fresh monitor and verifies each is
/// flagged (and nothing else is). This is the self-test the CI suite
/// runs — a monitor that cannot flag a planted violation proves
/// nothing by staying silent on real runs.
///
/// # Errors
///
/// Returns which injection went undetected (or spuriously fired).
pub fn violation_selftest() -> Result<(), String> {
    use crate::trace::{Tracer, NO_NODE};

    let cfg = MonitorConfig {
        committee_hi_step: 100,
        committee_hi_final: 120,
        max_future_gap: 3,
        max_future_buffer: 8,
        honest_nodes: 4,
    };
    let inject = |expected: Invariant, feed: &dyn Fn(&Tracer)| -> Result<(), String> {
        let tracer = Tracer::bounded(64);
        let monitor = MonitorHandle::new(cfg);
        tracer.set_observer(monitor.observer());
        feed(&tracer);
        let report = monitor.report();
        if report.count(expected) == 0 {
            return Err(format!("injected {} went undetected", expected.as_str()));
        }
        for (inv, n) in report.counts {
            if inv != expected && n != 0 {
                return Err(format!(
                    "injection of {} spuriously flagged {}",
                    expected.as_str(),
                    inv.as_str()
                ));
            }
        }
        let _ = NO_NODE;
        Ok(())
    };

    inject(Invariant::ConflictingCertificates, &|t| {
        t.span(SpanKind::Round, 0, 5, 0)
            .label("final")
            .id(0xaa)
            .ok(true)
            .end_at(10);
        t.span(SpanKind::Round, 1, 5, 0)
            .label("final")
            .id(0xbb)
            .ok(true)
            .end_at(12);
    })?;
    inject(Invariant::CommitteeBound, &|t| {
        // Two voters whose combined weight bursts the step bound.
        t.span(SpanKind::Tally, 0, 5, 0)
            .step(1)
            .label("add")
            .id(1)
            .cause(0xa1)
            .value(60)
            .instant();
        t.span(SpanKind::Tally, 0, 5, 0)
            .step(1)
            .label("add")
            .id(2)
            .cause(0xa2)
            .value(70)
            .instant();
    })?;
    inject(Invariant::SeedChain, &|t| {
        t.span(SpanKind::Verify, 2, 7, 0)
            .label("seed")
            .id(0xcc)
            .value(0xd1)
            .ok(false)
            .instant();
    })?;
    inject(Invariant::VoteDoubleCount, &|t| {
        t.span(SpanKind::Tally, 3, 5, 0)
            .step(2)
            .label("add")
            .id(1)
            .cause(0xa1)
            .value(2)
            .instant();
        t.span(SpanKind::Tally, 3, 5, 0)
            .step(2)
            .label("add")
            .id(9)
            .cause(0xa1)
            .value(2)
            .instant();
    })?;
    inject(Invariant::FutureStaleness, &|t| {
        // Parked 5 rounds ahead of the window's 3.
        t.span(SpanKind::Tally, 0, 9, 0)
            .step(5)
            .label("future")
            .id(1)
            .cause(0xa1)
            .value(1)
            .instant();
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            committee_hi_step: 100,
            committee_hi_final: 120,
            max_future_gap: 3,
            max_future_buffer: 8,
            honest_nodes: 4,
        }
    }

    #[test]
    fn clean_stream_reports_zero_violations() {
        let t = Tracer::bounded(64);
        let m = MonitorHandle::new(cfg());
        t.set_observer(m.observer());
        // Two nodes agree on round 5, tallies stay deduped and bounded,
        // seeds verify, a future vote parks within the window.
        t.span(SpanKind::Tally, 0, 5, 0)
            .step(1)
            .label("add")
            .id(1)
            .cause(0xa1)
            .value(40)
            .instant();
        t.span(SpanKind::Tally, 1, 5, 0)
            .step(1)
            .label("add")
            .id(1)
            .cause(0xa1)
            .value(40)
            .instant();
        t.span(SpanKind::Tally, 0, 5, 0)
            .label("add")
            .id(2)
            .cause(0xa2)
            .value(90)
            .instant();
        t.span(SpanKind::Tally, 0, 6, 0)
            .step(1)
            .label("future")
            .id(3)
            .cause(0xa3)
            .value(2)
            .instant();
        t.span(SpanKind::Verify, 0, 5, 0)
            .label("seed")
            .id(0xcc)
            .value(0xd1)
            .ok(true)
            .instant();
        t.span(SpanKind::Verify, 1, 5, 0)
            .label("seed")
            .id(0xcc)
            .value(0xd1)
            .ok(true)
            .instant();
        t.span(SpanKind::Round, 0, 5, 0)
            .label("final")
            .id(0xcc)
            .ok(true)
            .end_at(10);
        t.span(SpanKind::Round, 1, 5, 0)
            .label("final")
            .id(0xcc)
            .ok(true)
            .end_at(12);
        let r = m.report();
        assert_eq!(r.total_violations(), 0, "{r}");
        assert_eq!(r.observed.certificates, 2);
        assert_eq!(r.observed.tally_adds, 3);
        assert_eq!(r.observed.future_parks, 1);
        assert_eq!(r.observed.max_committee, 90);
    }

    #[test]
    fn tentative_conflicts_are_counted_not_flagged() {
        let mut m = InvariantMonitor::new(cfg());
        let t = Tracer::bounded(8);
        t.span(SpanKind::Round, 0, 4, 0)
            .label("tentative")
            .id(0xaa)
            .ok(false)
            .end_at(5);
        t.span(SpanKind::Round, 1, 4, 0)
            .label("tentative")
            .id(0xbb)
            .ok(false)
            .end_at(6);
        for ev in t.events() {
            m.observe(&ev);
        }
        let r = m.report();
        assert_eq!(r.total_violations(), 0);
        assert_eq!(r.observed.tentative_conflicts, 1);
    }

    #[test]
    fn byzantine_nodes_are_exempt() {
        let mut m = InvariantMonitor::new(cfg());
        let t = Tracer::bounded(8);
        // Node 7 is beyond honest_nodes = 4: its claims don't flag.
        t.span(SpanKind::Round, 0, 4, 0)
            .label("final")
            .id(0xaa)
            .ok(true)
            .end_at(5);
        t.span(SpanKind::Round, 7, 4, 0)
            .label("final")
            .id(0xbb)
            .ok(true)
            .end_at(6);
        for ev in t.events() {
            m.observe(&ev);
        }
        assert_eq!(m.report().total_violations(), 0);
    }

    #[test]
    fn restart_resets_the_nodes_tally_slate() {
        let mut m = InvariantMonitor::new(cfg());
        let t = Tracer::bounded(8);
        t.span(SpanKind::Tally, 2, 5, 0)
            .step(1)
            .label("add")
            .id(1)
            .cause(0xa1)
            .value(3)
            .instant();
        t.span(SpanKind::Fault, 2, 0, 0).label("restart").instant();
        // Same (voter, round, step) at the same node, post-restart: the
        // rebuilt engine legitimately re-tallies.
        t.span(SpanKind::Tally, 2, 5, 0)
            .step(1)
            .label("add")
            .id(1)
            .cause(0xa1)
            .value(3)
            .instant();
        for ev in t.events() {
            m.observe(&ev);
        }
        let r = m.report();
        assert_eq!(r.count(Invariant::VoteDoubleCount), 0, "{r}");
        // And the committee stays deduplicated (weight counted once).
        assert_eq!(r.observed.max_committee, 3);
    }

    #[test]
    fn selftest_flags_every_injection() {
        violation_selftest().unwrap();
    }

    #[test]
    fn verdict_class_and_machine_line() {
        let mut m = InvariantMonitor::new(cfg());
        assert_eq!(m.report().verdict_class(), None);
        let t = Tracer::bounded(8);
        t.span(SpanKind::Round, 0, 4, 0)
            .label("final")
            .id(0xaa)
            .ok(true)
            .end_at(5);
        t.span(SpanKind::Round, 1, 4, 0)
            .label("final")
            .id(0xbb)
            .ok(true)
            .end_at(6);
        for ev in t.events() {
            m.observe(&ev);
        }
        let r = m.report();
        assert_eq!(r.verdict_class(), Some(Invariant::ConflictingCertificates));
        let line = r.machine_line();
        assert!(line.starts_with("monitor total=1 certs=2 "), "{line}");
        assert!(line.contains(" conflicting_certificates=1"), "{line}");
        assert!(line.contains(" seed_chain=0"), "{line}");
        // Byte-stable across repeated renders of the same report.
        assert_eq!(line, r.machine_line());
    }
}
