//! Sample summaries: the exact five-number summary the paper's error bars
//! use, and a log-scale histogram for unbounded streams.
//!
//! [`Percentiles`] is computed from the full sample set with linear
//! interpolation — exact, but O(samples) memory. [`Histogram`] is the
//! streaming counterpart: constant memory, log-spaced buckets with eight
//! sub-buckets per octave (≤ 12.5% relative error per recorded value),
//! built for per-node latency and byte distributions that must merge
//! across a fleet.

/// The five-number summary the paper's error bars show, plus the tail
/// (p99) that per-transaction latency reporting needs.
#[derive(Clone, Copy, Debug)]
pub struct Percentiles {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Computes the summary of a non-empty sample set.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Percentiles {
        assert!(!values.is_empty(), "no samples");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
            }
        };
        Percentiles {
            min: v[0],
            p25: q(0.25),
            median: q(0.5),
            p75: q(0.75),
            p99: q(0.99),
            max: *v.last().expect("nonempty"),
        }
    }
}

/// Sub-buckets per octave: 3 mantissa bits, so every recorded value lands
/// in a bucket whose width is at most 1/8 of its lower bound.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Highest most-significant-bit position tracked exactly; larger values
/// fall into the overflow bucket. 2^47 µs is ~4.5 years of virtual time,
/// far beyond any simulated run.
const MAX_MSB: u32 = 47;
/// Linear region (values < SUB are their own bucket) plus one bucket per
/// (octave, sub-bucket) pair, plus the overflow bucket.
const BUCKETS: usize = SUB + ((MAX_MSB - SUB_BITS + 1) as usize) * SUB + 1;
const OVERFLOW: usize = BUCKETS - 1;

/// A fixed-memory log-scale histogram of `u64` samples (times in µs,
/// sizes in bytes).
///
/// Quantile extraction returns the lower bound of the bucket holding the
/// requested rank, clamped into the exact `[min, max]` observed range —
/// so a single-sample histogram reports that sample exactly, and no
/// quantile can ever fall outside the observed range.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value falls into.
    fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        if msb > MAX_MSB {
            return OVERFLOW;
        }
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + ((msb - SUB_BITS) as usize) * SUB + sub
    }

    /// The lower bound of bucket `i` (its representative value).
    fn bucket_floor(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        if i == OVERFLOW {
            return 1u64 << (MAX_MSB + 1);
        }
        let rel = i - SUB;
        let msb = (rel / SUB) as u32 + SUB_BITS;
        let sub = (rel % SUB) as u64;
        ((SUB as u64) + sub) << (msb - SUB_BITS)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Samples that landed in the overflow bucket (beyond 2^48).
    pub fn overflow_count(&self) -> u64 {
        self.counts[OVERFLOW]
    }

    /// The quantile `q` in `[0, 1]`, or `None` for an empty histogram.
    ///
    /// Returns the lower bound of the bucket containing the rank-`⌈q·n⌉`
    /// sample, clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (`None` when empty).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 99th percentile (`None` when empty).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self` (fleet merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_set() {
        let p = Percentiles::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p25, 2.0);
        assert_eq!(p.median, 3.0);
        assert_eq!(p.p75, 4.0);
        assert!((p.p99 - 4.96).abs() < 1e-9);
        assert_eq!(p.max, 5.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let p = Percentiles::of(&[0.0, 10.0]);
        assert_eq!(p.median, 5.0);
        assert_eq!(p.p25, 2.5);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 1_000_000, u64::from(u32::MAX)] {
            let floor = Histogram::bucket_floor(Histogram::bucket_of(v));
            assert!(floor <= v, "floor {floor} above value {v}");
            assert!(
                (v - floor) as f64 <= v as f64 / 8.0 + 1.0,
                "error too large: {v} -> {floor}"
            );
        }
    }

    #[test]
    fn quantiles_track_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50().unwrap() as f64;
        let p99 = h.p99().unwrap() as f64;
        assert!((p50 - 500.0).abs() <= 500.0 / 8.0 + 1.0, "p50 {p50}");
        assert!((p99 - 990.0).abs() <= 990.0 / 8.0 + 1.0, "p99 {p99}");
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
    }
}
