//! Plain-text metrics exposition: byte-stable `name{labels} value` lines.
//!
//! The format is Prometheus-*style*, hand-rolled and dependency-free,
//! designed for two consumers that must agree byte-for-byte:
//!
//! 1. the node's TELEMETRY frame (a scrape returns exactly these bytes),
//! 2. the cluster-health scraper, which parses them back with
//!    [`parse`] — a full round trip through this module.
//!
//! Grammar (one sample per line, `\n` terminated):
//!
//! ```text
//! line   := name ['{' label (',' label)* '}'] ' ' value
//! label  := key '="' escaped-value '"'
//! value  := '-'? [0-9]+
//! ```
//!
//! Determinism rules:
//!
//! * Samples are emitted in byte order of the registry key, so two
//!   renders of registries with equal contents are byte-identical.
//! * Label *values* are escaped (`\\`, `\"`, `\n`) and round-trip
//!   exactly, including unicode.
//! * Metric *names* and label *keys* are sanitized: any character
//!   outside `[A-Za-z0-9_:.]` becomes `_`. Sanitization is
//!   deterministic; hostile names cannot break the line orientation of
//!   the format. (Two hostile names may sanitize to the same line name —
//!   both lines are emitted and both parse.)
//! * Histograms expand into `<name>_count`, and — when non-empty —
//!   `<name>_sum`, `<name>_min`, `<name>_p50`, `<name>_p99`,
//!   `<name>_max` lines sharing the base name's labels.
//!
//! Registry keys produced by [`labeled`] carry their labels *inside the
//! key string* in canonical form, which is what makes per-peer metrics
//! (`transport.send_drops{peer="127.0.0.1:9001"}`) first-class registry
//! citizens with deterministic ordering for free.

use crate::registry::{MetricSnapshot, Registry};

/// One parsed sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// The (sanitized) metric name.
    pub name: String,
    /// Label pairs, in the order rendered (sorted by key).
    pub labels: Vec<(String, String)>,
    /// The sample value. Counters are non-negative; gauges may not be.
    pub value: i128,
}

impl Sample {
    /// The value of the label named `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Builds a canonical labeled registry key: `base{k="v",...}` with
/// labels sorted by key and values escaped. Registering metrics under
/// keys built here guarantees [`render`] emits them verbatim.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    out.push_str(&sanitize(base));
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize(k));
        out.push_str("=\"");
        escape_value_into(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Replaces every character outside `[A-Za-z0-9_:.]` with `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape_value_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Splits a registry key into `(base, labels)` if it is a well-formed
/// `labeled` key; otherwise the whole key is the base with no labels.
fn split_key(key: &str) -> (String, Vec<(String, String)>) {
    if let Some(open) = key.find('{') {
        if key.ends_with('}') {
            if let Some(labels) = parse_labels(&key[open + 1..key.len() - 1]) {
                return (sanitize(&key[..open]), labels);
            }
        }
    }
    (sanitize(key), Vec::new())
}

/// Parses a `k="v",k2="v2"` label block; `None` on any malformation.
fn parse_labels(block: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find("=\"")?;
        let key = &rest[..eq];
        if key.is_empty() || key.contains(['"', '{', '}', ',']) {
            return None;
        }
        rest = &rest[eq + 2..];
        // Scan the escaped value to its closing quote.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            let (i, c) = chars.next()?;
            match c {
                '\\' => match chars.next()?.1 {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    _ => return None,
                },
                '"' => break i,
                c => value.push(c),
            }
        };
        labels.push((key.to_string(), value));
        rest = &rest[close + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(labels)
}

fn render_line(out: &mut String, base: &str, labels: &[(String, String)], value: i128) {
    out.push_str(base);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_value_into(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders every metric in `registry` as exposition text. Byte-stable:
/// registries with equal contents render identically, regardless of
/// registration order.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (key, snap) in registry.snapshot_all() {
        let (base, labels) = split_key(&key);
        match snap {
            MetricSnapshot::Counter(v) => render_line(&mut out, &base, &labels, v as i128),
            MetricSnapshot::Gauge(v) => render_line(&mut out, &base, &labels, v as i128),
            MetricSnapshot::Histogram(h) => {
                render_line(
                    &mut out,
                    &format!("{base}_count"),
                    &labels,
                    h.count() as i128,
                );
                if h.count() > 0 {
                    render_line(&mut out, &format!("{base}_sum"), &labels, h.sum() as i128);
                    for (suffix, v) in [
                        ("min", h.min()),
                        ("p50", h.p50()),
                        ("p99", h.p99()),
                        ("max", h.max()),
                    ] {
                        if let Some(v) = v {
                            render_line(&mut out, &format!("{base}_{suffix}"), &labels, v as i128);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Re-renders parsed samples into exposition text. For canonical text
/// (anything [`render`] produced), `render_samples(&parse(text)?)`
/// reproduces the input byte for byte — the exactness the scraped-
/// artifact round-trip test pins down.
pub fn render_samples(samples: &[Sample]) -> String {
    let mut out = String::new();
    for s in samples {
        render_line(&mut out, &s.name, &s.labels, s.value);
    }
    out
}

/// Parses exposition text back into samples.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        // The name runs to the label block or the value separator.
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| err("missing value separator"))?;
        let name = line[..name_end].to_string();
        if name.is_empty() {
            return Err(err("empty metric name"));
        }
        let (labels, value_str) = if line.as_bytes()[name_end] == b'{' {
            let close = find_label_close(&line[name_end..])
                .ok_or_else(|| err("unterminated label block"))?
                + name_end;
            let labels = parse_labels(&line[name_end + 1..close])
                .ok_or_else(|| err("malformed label block"))?;
            let rest = line[close + 1..]
                .strip_prefix(' ')
                .ok_or_else(|| err("missing value separator"))?;
            (labels, rest)
        } else {
            (Vec::new(), &line[name_end + 1..])
        };
        let value: i128 = value_str.parse().map_err(|_| err("bad value"))?;
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Index (within `s`, which starts at `{`) of the `}` closing the label
/// block, honoring escaped quotes inside values.
fn find_label_close(s: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '}' {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_labeled_lines_roundtrip() {
        let reg = Registry::new();
        reg.counter("transport.frames_sent").add(41);
        reg.gauge("node.tip_round").set(-3);
        reg.counter(&labeled(
            "transport.send_drops",
            &[("peer", "127.0.0.1:9001")],
        ))
        .add(7);
        let text = render(&reg);
        let samples = parse(&text).unwrap();
        assert_eq!(samples.len(), 3);
        let drops = samples
            .iter()
            .find(|s| s.name == "transport.send_drops")
            .unwrap();
        assert_eq!(drops.label("peer"), Some("127.0.0.1:9001"));
        assert_eq!(drops.value, 7);
        let tip = samples.iter().find(|s| s.name == "node.tip_round").unwrap();
        assert_eq!(tip.value, -3);
    }

    #[test]
    fn labels_sort_by_key_and_escape_values() {
        let key = labeled("m", &[("z", "last"), ("a", "has \"quotes\"\nand\\slash")]);
        assert!(key.starts_with("m{a=\""));
        let reg = Registry::new();
        reg.counter(&key).inc();
        let samples = parse(&render(&reg)).unwrap();
        assert_eq!(samples[0].label("a"), Some("has \"quotes\"\nand\\slash"));
        assert_eq!(samples[0].label("z"), Some("last"));
    }

    #[test]
    fn histograms_expand_into_summary_lines() {
        let reg = Registry::new();
        let h = reg.histogram("wal.append_us");
        h.record(100);
        h.record(300);
        reg.histogram("blocksync.response_us"); // Empty: only _count.
        let text = render(&reg);
        let samples = parse(&text).unwrap();
        let get = |n: &str| samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("wal.append_us_count"), Some(2));
        assert_eq!(get("wal.append_us_sum"), Some(400));
        assert_eq!(get("wal.append_us_min"), Some(100));
        assert_eq!(get("wal.append_us_max"), Some(300));
        assert_eq!(get("blocksync.response_us_count"), Some(0));
        assert_eq!(get("blocksync.response_us_sum"), None);
    }

    #[test]
    fn render_is_byte_stable_across_registration_order() {
        let build = |flip: bool| {
            let reg = Registry::new();
            let names = ["b.two", "a.one", "c{x=\"1\"}"];
            let order: Vec<&str> = if flip {
                names.iter().rev().copied().collect()
            } else {
                names.to_vec()
            };
            for n in order {
                reg.counter(n).add(5);
            }
            render(&reg)
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn hostile_names_sanitize_deterministically_and_parse() {
        let reg = Registry::new();
        reg.counter("evil name\nwith{newline").add(1);
        reg.gauge("quo\"te").set(2);
        let text = render(&reg);
        // No line structure damage: exactly one line per metric.
        assert_eq!(text.lines().count(), 2);
        let samples = parse(&text).unwrap();
        assert!(samples.iter().any(|s| s.name == "evil_name_with_newline"));
        assert!(samples.iter().any(|s| s.name == "quo_te" && s.value == 2));
        // Sanitization is idempotent: re-render of a registry keyed by
        // the sanitized names produces identical bytes.
        let reg2 = Registry::new();
        reg2.counter("evil_name_with_newline").add(1);
        reg2.gauge("quo_te").set(2);
        assert_eq!(render(&reg2), text);
    }

    #[test]
    fn unicode_label_values_roundtrip() {
        let reg = Registry::new();
        reg.counter(&labeled("m", &[("peer", "🚀 λ-nœud")])).add(9);
        let samples = parse(&render(&reg)).unwrap();
        assert_eq!(samples[0].label("peer"), Some("🚀 λ-nœud"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse("noval\n").is_err());
        assert!(parse("m{unterminated 3\n").is_err());
        assert!(parse("m{k=\"v\"} notanum\n").is_err());
        assert!(parse("m{k=v} 3\n").is_err());
        assert!(parse(" 3\n").is_err());
    }

    #[test]
    fn full_roundtrip_is_exact_for_canonical_keys() {
        let reg = Registry::new();
        reg.counter(&labeled("a", &[("k", "v1")])).add(1);
        reg.counter(&labeled("a", &[("k", "v2")])).add(2);
        let text = render(&reg);
        let samples = parse(&text).unwrap();
        // Re-render from parsed samples reproduces the bytes.
        assert_eq!(render_samples(&samples), text);
    }
}
