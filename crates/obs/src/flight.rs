//! Flight recorder: a bounded ring of the *most recent* trace events.
//!
//! The tracer's own buffer keeps the **first** `cap` events (good for
//! deterministic replay comparison); a crash investigation needs the
//! opposite — the *last* moments before the failure. The flight recorder
//! rides the tracer's observer slot (see [`crate::trace::fanout`] to
//! share that slot with the invariant monitor), keeping a sliding window
//! of recent events with exact eviction accounting, and dumps in the same
//! JSONL format as a full trace so every existing trace tool parses it.

use crate::trace::{write_jsonl, TraceEvent, TraceObserver};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The ring itself: most recent `cap` events, with accounting.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<TraceEvent>,
    cap: usize,
    recorded: u64,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `cap` events.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::with_capacity(cap.min(4096)),
            cap,
            recorded: 0,
            evicted: 0,
        }
    }

    /// Pushes one event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.recorded += 1;
            self.evicted += 1;
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(ev);
        self.recorded += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever pushed.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted to make room (recorded − retained).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// A cloneable handle to a shared [`FlightRecorder`]; the node runtime
/// holds one and hands [`FlightHandle::observer`] to the tracer.
#[derive(Clone, Debug)]
pub struct FlightHandle(Arc<Mutex<FlightRecorder>>);

struct FlightObserver(FlightHandle);

impl TraceObserver for FlightObserver {
    fn observe(&mut self, ev: &TraceEvent) {
        self.0 .0.lock().expect("flight lock").push(ev.clone());
    }
}

impl FlightHandle {
    /// A handle to a fresh recorder retaining `cap` events.
    pub fn new(cap: usize) -> FlightHandle {
        FlightHandle(Arc::new(Mutex::new(FlightRecorder::new(cap))))
    }

    /// An observer feeding this recorder, for [`crate::Tracer::set_observer`]
    /// (combine with other observers via [`crate::trace::fanout`]).
    pub fn observer(&self) -> Box<dyn TraceObserver> {
        Box::new(FlightObserver(self.clone()))
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.lock().expect("flight lock").events()
    }

    /// `(retained, recorded, evicted)` accounting snapshot.
    pub fn stats(&self) -> (usize, u64, u64) {
        let r = self.0.lock().expect("flight lock");
        (r.len(), r.recorded(), r.evicted())
    }

    /// Dumps the ring as trace JSONL keyed by `(seed, schedule)`. The
    /// header's `dropped` field carries the eviction count, so
    /// [`crate::parse_jsonl`] reads a flight dump exactly like a
    /// truncated trace.
    pub fn dump_jsonl(&self, seed: u64, schedule: &str) -> String {
        let r = self.0.lock().expect("flight lock");
        write_jsonl(seed, schedule, r.evicted(), &r.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_jsonl;
    use crate::trace::{SpanKind, Tracer};

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            kind: SpanKind::Verify,
            node: 0,
            round: i,
            step: 0,
            label: std::borrow::Cow::Borrowed("vote"),
            start: i,
            end: i,
            value: 0,
            ok: true,
            id: 0,
            cause: 0,
            peer: crate::NO_NODE,
        }
    }

    #[test]
    fn retains_most_recent_cap_events() {
        let mut r = FlightRecorder::new(4);
        for i in 0..11u64 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 11);
        assert_eq!(r.evicted(), 7);
        let rounds: Vec<u64> = r.events().iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![7, 8, 9, 10]);
    }

    #[test]
    fn under_capacity_evicts_nothing() {
        let mut r = FlightRecorder::new(8);
        for i in 0..3u64 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 0);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    fn zero_capacity_counts_everything_as_evicted() {
        let mut r = FlightRecorder::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 2);
        assert_eq!(r.evicted(), 2);
    }

    #[test]
    fn accounting_identity_holds() {
        let mut r = FlightRecorder::new(5);
        for i in 0..23u64 {
            r.push(ev(i));
            assert_eq!(r.recorded(), r.evicted() + r.len() as u64);
        }
    }

    #[test]
    fn dump_parses_with_the_trace_parser() {
        let h = FlightHandle::new(3);
        let t = Tracer::bounded(1); // Tiny buffer: observer still sees all.
        t.set_observer(h.observer());
        for i in 0..9u64 {
            t.span(SpanKind::Verify, 0, i, i).label("vote").instant();
        }
        let dump = h.dump_jsonl(7, "flight wal_round=9");
        let parsed = parse_jsonl(&dump).unwrap();
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.schedule, "flight wal_round=9");
        assert_eq!(parsed.dropped, 6); // Evictions ride the dropped field.
        let rounds: Vec<u64> = parsed.events.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![6, 7, 8]);
    }
}
