//! Cluster trace merging: fuses per-process trace drains into one
//! causal graph on a common clock.
//!
//! A live deployment has no shared simulator clock — every node stamps
//! events with its own monotonic microsecond counter, started whenever
//! that process happened to boot. What the processes *do* share is
//! content: a finalized round's [`crate::SpanKind::Round`] span carries
//! the block's [`crate::stable_id`], which is identical on every node
//! that finalized the same block. Those spans are the **anchors**:
//!
//! 1. pick the reference node (most finalized rounds, ties to the
//!    lowest node id);
//! 2. for every other node, take the rounds both finalized and compute
//!    `delta = ref_conclusion − node_conclusion` per anchor; the node's
//!    clock **offset** is the median delta, and its **skew bound** is
//!    the worst |delta − offset| — how far the alignment may still be
//!    wrong after correction;
//! 3. shift every event by its node's offset and rebase the whole
//!    merged timeline to start at 0.
//!
//! Canonicalization then makes the merge a pure function of the drained
//! traces: the **horizon** is the earliest "last aligned event" over
//! all nodes, round conclusions past it are dropped (some process
//! stopped observing before they settled, so cross-process chains could
//! be silently truncated), and events are sorted by a total key in
//! which *end time comes first* — effects follow their causes, and the
//! causal walker's recording-order assumptions keep holding on the
//! merged stream. Merging the same drains twice is byte-identical.
//!
//! Gossip hops are recorded half per process: the sender logs a `send`
//! instant (queue depth, wire bytes) and the receiver logs an arrival
//! instant, both stamped with the same message id. [`merge`] fuses each
//! arrival with the latest plausible send of that id — aligned send
//! time at most the arrival time plus the pair's combined skew bound —
//! into one sim-shaped hop span (`peer` = sender, `step` = queue depth
//! at send), which is exactly what [`crate::causal`] walks.

use crate::causal::{critical_paths, EdgeKind};
use crate::trace::{
    escape_into, field_raw, field_str, field_u64, parse_jsonl, write_jsonl, SpanKind, Trace,
    TraceEvent, NO_NODE,
};

/// One node's drained trace, tagged with the index and address it was
/// collected from.
#[derive(Clone, Debug)]
pub struct NodeTrace {
    /// The node's cluster index (from the drain header).
    pub node: u32,
    /// The address the trace was drained from.
    pub addr: String,
    /// The drained trace.
    pub trace: Trace,
}

/// Per-node clock-alignment metadata recorded in a merged trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeMeta {
    /// The node's cluster index.
    pub node: u32,
    /// The address the trace was drained from.
    pub addr: String,
    /// Microseconds added to this node's clock to align it with the
    /// reference node (0 for the reference itself). Negative when the
    /// node's clock ran ahead.
    pub offset: i64,
    /// Worst-case residual misalignment after applying `offset`, µs.
    pub skew: u64,
    /// Finalized-round anchors shared with the reference node.
    pub anchors: u64,
    /// Events this node contributed to the merge.
    pub events: u64,
}

/// A merged cluster trace: one canonical event stream plus the
/// alignment metadata that produced it.
#[derive(Clone, Debug)]
pub struct Merged {
    /// The deployment seed (identical on every node, enforced).
    pub seed: u64,
    /// Completeness horizon: the earliest "last aligned event" over all
    /// nodes. Round conclusions after it were dropped.
    pub horizon: u64,
    /// Total events dropped at record time across all nodes.
    pub dropped: u64,
    /// Per-node alignment metadata, ascending by node id.
    pub nodes: Vec<NodeMeta>,
    /// The canonical merged event stream.
    pub events: Vec<TraceEvent>,
}

/// Rank of a kind in the canonical merged order: the declaration order
/// of the taxonomy. At equal `(end, start, node)` a BA⋆ step sorts
/// before the vote emission it triggered, preserving the recording-
/// order semantics the causal walker relies on.
fn kind_rank(kind: SpanKind) -> u8 {
    match kind {
        SpanKind::Round => 0,
        SpanKind::Proposal => 1,
        SpanKind::BaStep => 2,
        SpanKind::Sortition => 3,
        SpanKind::Verify => 4,
        SpanKind::Tally => 5,
        SpanKind::GossipHop => 6,
        SpanKind::Catchup => 7,
        SpanKind::Fault => 8,
    }
}

#[allow(clippy::type_complexity)]
fn sort_key(ev: &TraceEvent) -> (u64, u64, u32, u8, u64, u32, u64, u64, u64, u32, bool) {
    (
        ev.end,
        ev.start,
        ev.node,
        kind_rank(ev.kind),
        ev.round,
        ev.step,
        ev.id,
        ev.cause,
        ev.value,
        ev.peer,
        ev.ok,
    )
}

fn median(sorted: &[i64]) -> i64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        // Midpoint, rounding toward the lower sample — deterministic.
        let (a, b) = (sorted[n / 2 - 1], sorted[n / 2]);
        a + (b - a) / 2
    }
}

/// Merges per-node trace drains into one canonical cluster trace.
///
/// # Errors
///
/// - fewer than one input, duplicate node indices, or mismatched seeds;
/// - a node sharing **no** finalized-round anchor with the reference
///   node — its clock cannot be aligned, and merging it unaligned would
///   fabricate causality.
pub fn merge(inputs: &[NodeTrace]) -> Result<Merged, String> {
    let first = inputs.first().ok_or("merge of zero traces")?;
    let seed = first.trace.seed;
    let mut nodes: Vec<&NodeTrace> = inputs.iter().collect();
    nodes.sort_by_key(|n| n.node);
    for pair in nodes.windows(2) {
        if pair[0].node == pair[1].node {
            return Err(format!("duplicate node index {} in merge", pair[0].node));
        }
    }
    for n in &nodes {
        if n.trace.seed != seed {
            return Err(format!(
                "seed mismatch: node {} has {}, node {} has {seed}",
                n.node, n.trace.seed, first.node
            ));
        }
    }

    // Anchor table: (round, block id) -> conclusion instant, per node.
    // Only finalized conclusions anchor — tentative rounds may conclude
    // at genuinely different instants on different nodes.
    let anchors_of = |nt: &NodeTrace| -> Vec<((u64, u64), u64)> {
        nt.trace
            .events
            .iter()
            .filter(|ev| ev.kind == SpanKind::Round && ev.ok && ev.id != 0)
            .map(|ev| ((ev.round, ev.id), ev.end))
            .collect()
    };
    let reference = nodes
        .iter()
        .max_by_key(|n| (anchors_of(n).len(), std::cmp::Reverse(n.node)))
        .copied()
        .ok_or("merge of zero traces")?;
    let ref_anchors: std::collections::HashMap<(u64, u64), u64> =
        anchors_of(reference).into_iter().collect();

    let mut metas: Vec<NodeMeta> = Vec::new();
    for n in &nodes {
        let (offset, skew, count) = if n.node == reference.node {
            (0i64, 0u64, ref_anchors.len() as u64)
        } else {
            let mut deltas: Vec<i64> = anchors_of(n)
                .into_iter()
                .filter_map(|(key, t)| ref_anchors.get(&key).map(|rt| *rt as i64 - t as i64))
                .collect();
            if deltas.is_empty() {
                return Err(format!(
                    "node {} shares no finalized-round anchor with reference node {}; \
                     clocks cannot be aligned",
                    n.node, reference.node
                ));
            }
            deltas.sort_unstable();
            let offset = median(&deltas);
            let skew = deltas.iter().map(|d| d.abs_diff(offset)).max().unwrap_or(0);
            (offset, skew, deltas.len() as u64)
        };
        metas.push(NodeMeta {
            node: n.node,
            addr: n.addr.clone(),
            offset,
            skew,
            anchors: count,
            events: n.trace.events.len() as u64,
        });
    }

    // Align: shift every event by its node's offset, tracking the
    // pre-rebase minimum and each node's last observation.
    let mut aligned: Vec<TraceEvent> = Vec::new();
    let mut min_t = i64::MAX;
    let mut last_per_node: Vec<i64> = Vec::new();
    for (n, meta) in nodes.iter().zip(&metas) {
        let mut last = i64::MIN;
        for ev in &n.trace.events {
            let mut ev = ev.clone();
            let start = ev.start as i64 + meta.offset;
            let end = ev.end as i64 + meta.offset;
            min_t = min_t.min(start);
            last = last.max(end);
            // Stash aligned times; rebased below once min_t is known.
            ev.start = start as u64;
            ev.end = end as u64;
            aligned.push(ev);
        }
        last_per_node.push(last);
    }
    if min_t == i64::MAX {
        return Err("merge of empty traces".into());
    }
    for ev in &mut aligned {
        ev.start = (ev.start as i64 - min_t) as u64;
        ev.end = (ev.end as i64 - min_t) as u64;
    }
    let horizon = last_per_node
        .iter()
        .map(|t| (t - min_t).max(0) as u64)
        .min()
        .unwrap_or(0);

    // Fuse live-node hop halves: receiver arrival instants (peer
    // unknown) pair with the latest plausible `send` instant of the
    // same message id from another node.
    let skew_of =
        |node: u32| -> u64 { metas.iter().find(|m| m.node == node).map_or(0, |m| m.skew) };
    let sends: Vec<&TraceEvent> = aligned
        .iter()
        .filter(|ev| ev.kind == SpanKind::GossipHop && ev.label == "send")
        .collect();
    let mut fused: Vec<TraceEvent> = Vec::with_capacity(aligned.len());
    for ev in &aligned {
        if ev.kind != SpanKind::GossipHop {
            fused.push(ev.clone());
            continue;
        }
        if ev.label == "send" {
            continue; // consumed below (or unmatched; either way not a hop)
        }
        if ev.peer != NO_NODE || ev.id == 0 {
            fused.push(ev.clone()); // already a full hop (sim trace) or summary
            continue;
        }
        let slack = skew_of(ev.node);
        let best = sends
            .iter()
            .filter(|s| {
                s.id == ev.id
                    && s.node != ev.node
                    && s.end <= ev.end.saturating_add(slack + skew_of(s.node))
            })
            .max_by_key(|s| (s.end, std::cmp::Reverse(s.node)));
        match best {
            Some(s) => {
                let mut hop = ev.clone();
                hop.peer = s.node;
                hop.step = s.step;
                hop.start = s.end.min(ev.end);
                fused.push(hop);
            }
            None => fused.push(ev.clone()),
        }
    }

    // Canonicalize: drop round conclusions past the horizon, then sort
    // by the total key.
    fused.retain(|ev| ev.kind != SpanKind::Round || ev.end <= horizon);
    fused.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)).then(a.label.cmp(&b.label)));

    Ok(Merged {
        seed,
        horizon,
        dropped: nodes.iter().map(|n| n.trace.dropped).sum(),
        nodes: metas,
        events: fused,
    })
}

/// Serializes a merged trace as standard trace JSONL whose header line
/// additionally carries the merge metadata (`"horizon"`, `"nodes"`).
/// [`crate::parse_jsonl`] reads only the fields it knows, so every
/// existing trace tool consumes the output unchanged; [`parse_merged`]
/// recovers the metadata.
pub fn write_merged(m: &Merged) -> String {
    let schedule = format!("merged cluster n={}", m.nodes.len());
    let base = write_jsonl(m.seed, &schedule, m.dropped, &m.events);
    let newline = base.find('\n').expect("header line");
    let mut meta = String::new();
    meta.push_str(&format!(",\"horizon\":{},\"nodes\":[", m.horizon));
    for (i, n) in m.nodes.iter().enumerate() {
        if i > 0 {
            meta.push(',');
        }
        meta.push_str(&format!("{{\"node\":{},\"addr\":\"", n.node));
        escape_into(&mut meta, &n.addr);
        meta.push_str(&format!(
            "\",\"offset\":{},\"skew\":{},\"anchors\":{},\"node_events\":{}}}",
            n.offset, n.skew, n.anchors, n.events
        ));
    }
    meta.push(']');
    // Splice the metadata just before the header's closing brace.
    let mut out = String::with_capacity(base.len() + meta.len());
    out.push_str(&base[..newline - 1]);
    out.push_str(&meta);
    out.push_str(&base[newline - 1..]);
    out
}

fn field_i64(line: &str, key: &str) -> Result<i64, String> {
    field_raw(line, key)
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| format!("missing or bad field {key:?} in {line:?}"))
}

/// Extracts the raw `"nodes":[...]` array body from a merged header.
/// [`field_raw`] stops at the first top-level ',' and cannot span an
/// array, so this walks brackets (string-aware) itself.
fn nodes_array(header: &str) -> Result<&str, String> {
    let pat = "\"nodes\":[";
    let at = header
        .find(pat)
        .ok_or("merged header has no \"nodes\" field")?
        + pat.len();
    let rest = &header[at..];
    let (mut depth, mut in_str, mut escaped) = (1u32, false, false);
    for (i, c) in rest.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else {
            match c {
                '"' => in_str = true,
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(&rest[..i]);
                    }
                }
                _ => {}
            }
        }
    }
    Err("unterminated \"nodes\" array in merged header".into())
}

/// Parses the output of [`write_merged`] back into a [`Merged`].
///
/// # Errors
///
/// Anything [`crate::parse_jsonl`] rejects, or missing/malformed merge
/// metadata.
pub fn parse_merged(input: &str) -> Result<Merged, String> {
    let trace = parse_jsonl(input)?;
    let header = input.lines().next().ok_or("empty merged trace")?;
    let horizon = field_u64(header, "horizon")?;
    let mut nodes = Vec::new();
    let array = nodes_array(header)?;
    // Objects carry no nested braces, so splitting on '}' is safe.
    for obj in array.split('}') {
        let obj = obj.trim_start_matches(',').trim();
        if obj.is_empty() {
            continue;
        }
        let obj = format!("{obj}}}");
        nodes.push(NodeMeta {
            node: field_u64(&obj, "node")? as u32,
            addr: field_str(&obj, "addr")?,
            offset: field_i64(&obj, "offset")?,
            skew: field_u64(&obj, "skew")?,
            anchors: field_u64(&obj, "anchors")?,
            events: field_u64(&obj, "node_events")?,
        });
    }
    Ok(Merged {
        seed: trace.seed,
        horizon,
        dropped: trace.dropped,
        nodes,
        events: trace.events,
    })
}

/// Renders the operator-facing cluster critical-path report: alignment
/// metadata, one per-round chain with per-hop wire attribution (frame
/// kind, sender address, wire bytes, queue depth at send), and the
/// coverage roll-up. Deterministic for a given merged trace — the
/// `cluster_trace` CI gate asserts byte-identical reruns.
pub fn render_report(m: &Merged) -> String {
    let addr_of = |node: u32| -> &str {
        m.nodes
            .iter()
            .find(|n| n.node == node)
            .map_or("?", |n| n.addr.as_str())
    };
    let mut out = String::new();
    out.push_str("merged cluster critical path\n============================\n");
    out.push_str(&format!(
        "seed={} nodes={} events={} dropped={} horizon={}us\n",
        m.seed,
        m.nodes.len(),
        m.events.len(),
        m.dropped,
        m.horizon
    ));
    for n in &m.nodes {
        out.push_str(&format!(
            "node {} addr={} offset={:+}us skew={}us anchors={} events={}\n",
            n.node, n.addr, n.offset, n.skew, n.anchors, n.events
        ));
    }
    let paths = critical_paths(&m.events);
    let mut cross = 0usize;
    let mut min_cov = f64::INFINITY;
    let mut sum_cov = 0.0f64;
    for p in &paths {
        let processes: std::collections::BTreeSet<u32> = p
            .edges
            .iter()
            .flat_map(|e| [e.from_node, e.to_node])
            .filter(|n| *n != NO_NODE)
            .collect();
        if processes.len() > 1 {
            cross += 1;
        }
        let cov = p.coverage();
        min_cov = min_cov.min(cov);
        sum_cov += cov;
        out.push_str(&format!(
            "\nround {}: finalizer=node{} final={} latency={}us attributed={}us \
             coverage={:.3} processes={}\n",
            p.round,
            p.finalizer,
            p.final_consensus,
            p.latency(),
            p.attributed(),
            cov,
            processes.len()
        ));
        for e in &p.edges {
            let span = if e.from_node == e.to_node {
                format!("node{}", e.to_node)
            } else {
                format!("node{}->node{}", e.from_node, e.to_node)
            };
            out.push_str(&format!(
                "  {:<9} {:<16} {:>8}..{:<8} {:>7}us  {}",
                e.kind.as_str(),
                span,
                e.start,
                e.end,
                e.duration(),
                e.label
            ));
            if e.kind == EdgeKind::Gossip && e.from_node != e.to_node && e.from_node != NO_NODE {
                out.push_str(&format!(
                    " {}B q={} from={}",
                    e.bytes,
                    e.queue_depth,
                    addr_of(e.from_node)
                ));
            }
            out.push('\n');
        }
        let attr = p.attribution();
        out.push_str(&format!(
            "  attribution: proposal={}us gossip={}us verify={}us ba_step={}us\n",
            attr[0].1, attr[1].1, attr[2].1, attr[3].1
        ));
    }
    if paths.is_empty() {
        min_cov = 0.0;
    }
    out.push_str(&format!(
        "\nrounds={} cross_process_chains={} mean_coverage={:.3} min_coverage={:.3}\n",
        paths.len(),
        cross,
        if paths.is_empty() {
            0.0
        } else {
            sum_cov / paths.len() as f64
        },
        min_cov
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::{proposal_span_id, step_span_id};
    use crate::trace::{stable_id, Tracer};

    /// Two processes observe the same round with clocks 1_000_000µs
    /// apart: node 0 (the proposer/finalizer) starts its clock at 0,
    /// node 1 starts 1s later in wall time, so the same wall instants
    /// read 1_000_000 *lower* on node 1's clock.
    fn two_process_round() -> Vec<NodeTrace> {
        let block = stable_id(&[7u8; 32]);
        let vote = stable_id(&[9u8; 32]);
        let r = 1u64;
        // Node 0's clock: wall time. Node 1's clock: wall − 1_000_000.
        let n1 = |wall: u64| wall - 1_000_000;

        let t0 = Tracer::bounded(64);
        t0.span(SpanKind::Proposal, 0, r, 1_000_000)
            .id(proposal_span_id(0, r))
            .cause(block)
            .end_at(1_000_090);
        // Sender half of the block hop 0 -> 1.
        t0.span(SpanKind::GossipHop, 0, r, 1_000_010)
            .label("send")
            .step(2)
            .id(block)
            .value(900)
            .instant();
        // Sender half of node 0's own final-vote broadcast (never
        // fused: node 1 doesn't need it for this round's chain).
        t0.span(SpanKind::BaStep, 0, r, 1_000_100)
            .step(1)
            .label("binary")
            .id(step_span_id(0, r, 1))
            .end_at(1_000_300);
        t0.span(SpanKind::Verify, 0, r, 1_000_380)
            .label("vote")
            .id(vote)
            .instant();
        // Receiver half of the vote hop 1 -> 0 (arrival instant).
        t0.span(SpanKind::GossipHop, 0, r, 1_000_380)
            .label("vote")
            .id(vote)
            .value(120)
            .instant();
        t0.span(SpanKind::BaStep, 0, r, 1_000_320)
            .label("final")
            .id(step_span_id(0, r, 0))
            .cause(vote)
            .end_at(1_000_400);
        t0.span(SpanKind::Round, 0, r, 1_000_000)
            .label("final")
            .id(block)
            .cause(step_span_id(0, r, 0))
            .ok(true)
            .end_at(1_000_400);

        let t1 = Tracer::bounded(64);
        // Receiver half of the block hop (node 1's clock).
        t1.span(SpanKind::GossipHop, 1, r, n1(1_000_100))
            .label("block_body")
            .id(block)
            .value(900)
            .instant();
        t1.span(SpanKind::Proposal, 1, r, n1(1_000_000))
            .id(proposal_span_id(1, r))
            .cause(block)
            .end_at(n1(1_000_100));
        t1.span(SpanKind::BaStep, 1, r, n1(1_000_100))
            .step(1)
            .label("binary")
            .id(step_span_id(1, r, 1))
            .end_at(n1(1_000_300));
        t1.span(SpanKind::Sortition, 1, r, n1(1_000_300))
            .label("committee")
            .id(vote)
            .value(3)
            .instant();
        // Sender half of the vote hop 1 -> 0.
        t1.span(SpanKind::GossipHop, 1, r, n1(1_000_300))
            .label("send")
            .step(5)
            .id(vote)
            .value(120)
            .instant();
        t1.span(SpanKind::Round, 1, r, n1(1_000_000))
            .label("final")
            .id(block)
            .cause(step_span_id(1, r, 1))
            .ok(true)
            .end_at(n1(1_000_400));

        vec![
            NodeTrace {
                node: 0,
                addr: "127.0.0.1:9000".into(),
                trace: parse_jsonl(&t0.export_jsonl(7, "drain node=0 cursor=0")).unwrap(),
            },
            NodeTrace {
                node: 1,
                addr: "127.0.0.1:9001".into(),
                trace: parse_jsonl(&t1.export_jsonl(7, "drain node=1 cursor=0")).unwrap(),
            },
        ]
    }

    #[test]
    fn aligns_clocks_and_fuses_cross_process_hops() {
        let m = merge(&two_process_round()).unwrap();
        // Node 0 finalized one round more... both finalized round 1;
        // node 0 wins the reference tie (lowest id), so node 1's offset
        // is +1_000_000 (its clock ran 1s behind... i.e. read lower).
        assert_eq!(m.nodes[0].offset, 0);
        assert_eq!(m.nodes[1].offset, 1_000_000);
        assert_eq!(m.nodes[1].skew, 0, "single consistent anchor pair");
        // No raw send halves survive; both hops are fused with sender,
        // queue depth, and bytes.
        assert!(m.events.iter().all(|e| e.label != "send"));
        let vote_hop = m
            .events
            .iter()
            .find(|e| e.kind == SpanKind::GossipHop && e.label == "vote")
            .unwrap();
        assert_eq!(vote_hop.node, 0);
        assert_eq!(vote_hop.peer, 1);
        assert_eq!(vote_hop.step, 5, "queue depth at send");
        assert_eq!(vote_hop.value, 120);
        assert!(vote_hop.start < vote_hop.end);
        let block_hop = m
            .events
            .iter()
            .find(|e| e.kind == SpanKind::GossipHop && e.label == "block_body")
            .unwrap();
        assert_eq!((block_hop.node, block_hop.peer, block_hop.step), (1, 0, 2));

        // The merged stream yields one cross-process critical path with
        // near-complete coverage.
        let paths = critical_paths(&m.events);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert!(p.final_consensus);
        assert!(p.coverage() >= 0.90, "coverage {}", p.coverage());
        assert!(p
            .edges
            .iter()
            .any(|e| e.from_node == 1 && e.to_node == 0 && e.label == "vote"));
        assert!(p.edges.iter().any(|e| e.label == "block_body"));
        // Wire attribution flows through to the edges.
        let vote_edge = p.edges.iter().find(|e| e.label == "vote").unwrap();
        assert_eq!((vote_edge.bytes, vote_edge.queue_depth), (120, 5));
    }

    #[test]
    fn merge_and_render_are_deterministic() {
        let inputs = two_process_round();
        let a = merge(&inputs).unwrap();
        let b = merge(&inputs).unwrap();
        assert_eq!(write_merged(&a), write_merged(&b));
        assert_eq!(render_report(&a), render_report(&b));
        // Input order must not matter either.
        let mut reversed = inputs.clone();
        reversed.reverse();
        let c = merge(&reversed).unwrap();
        assert_eq!(write_merged(&a), write_merged(&c));
    }

    #[test]
    fn merged_artifact_roundtrips_and_stays_a_plain_trace() {
        let m = merge(&two_process_round()).unwrap();
        let text = write_merged(&m);
        // Every existing tool reads it as an ordinary trace.
        let plain = parse_jsonl(&text).unwrap();
        assert_eq!(plain.seed, 7);
        assert_eq!(plain.events.len(), m.events.len());
        // And the metadata survives the round trip.
        let back = parse_merged(&text).unwrap();
        assert_eq!(back.horizon, m.horizon);
        assert_eq!(back.nodes, m.nodes);
        assert_eq!(back.events, m.events);
        assert_eq!(write_merged(&back), text);
    }

    #[test]
    fn rounds_past_the_horizon_are_dropped() {
        let mut inputs = two_process_round();
        // Node 0 finalizes a second round *after* node 1's last
        // observation: its conclusion must not survive the merge.
        let t = Tracer::bounded(8);
        t.span(SpanKind::Round, 0, 2, 1_000_500)
            .label("final")
            .id(stable_id(&[8u8; 32]))
            .ok(true)
            .end_at(9_000_000);
        inputs[0]
            .trace
            .events
            .extend(parse_jsonl(&t.export_jsonl(7, "s")).unwrap().events);
        let m = merge(&inputs).unwrap();
        assert!(m
            .events
            .iter()
            .all(|e| e.kind != SpanKind::Round || e.round != 2));
        assert_eq!(critical_paths(&m.events).len(), 1);
    }

    #[test]
    fn unalignable_and_mismatched_inputs_are_rejected() {
        let mut inputs = two_process_round();
        assert!(merge(&[]).is_err());
        // Seed mismatch.
        inputs[1].trace.seed = 99;
        assert!(merge(&inputs).unwrap_err().contains("seed mismatch"));
        // No shared anchor: strip node 1's round conclusions.
        let mut inputs = two_process_round();
        inputs[1].trace.events.retain(|e| e.kind != SpanKind::Round);
        assert!(merge(&inputs).unwrap_err().contains("anchor"));
        // Duplicate node index.
        let mut inputs = two_process_round();
        inputs[1].node = 0;
        assert!(merge(&inputs).unwrap_err().contains("duplicate"));
    }
}
