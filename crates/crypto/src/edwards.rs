//! The Curve25519 group in twisted Edwards form.
//!
//! The curve is −x² + y² = 1 + d·x²·y² over GF(2^255 − 19) with
//! d = −121665/121666, i.e. edwards25519. Points are held in extended
//! coordinates (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z, which
//! admit complete (exception-free) addition formulas for a = −1.
//!
//! The curve constants (d and the basepoint) are *derived in code* from
//! their defining equations — d from −121665/121666 and the basepoint from
//! y = 4/5 — rather than transcribed, so they cannot be mistyped; tests pin
//! the well-known compressed basepoint encoding.

use crate::field::FieldElement;
use crate::scalar::Scalar;

/// A point on edwards25519 in extended twisted Edwards coordinates.
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

/// The curve constant d = −121665/121666 mod p.
pub fn d() -> FieldElement {
    static D: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
    *D.get_or_init(|| {
        FieldElement::from_u64(121665)
            .neg()
            .mul(&FieldElement::from_u64(121666).invert())
    })
}

/// The curve constant 2d, used by the addition formulas.
fn d2() -> FieldElement {
    static D2: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
    *D2.get_or_init(|| d().add(&d()))
}

impl EdwardsPoint {
    /// The identity element (0, 1).
    pub fn identity() -> EdwardsPoint {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The standard basepoint, with y = 4/5 and x even.
    pub fn basepoint() -> EdwardsPoint {
        static B: std::sync::OnceLock<EdwardsPoint> = std::sync::OnceLock::new();
        *B.get_or_init(|| {
            let y = FieldElement::from_u64(4).mul(&FieldElement::from_u64(5).invert());
            let yy = y.square();
            let u = yy.sub(&FieldElement::ONE);
            let v = d().mul(&yy).add(&FieldElement::ONE);
            let x = FieldElement::sqrt_ratio(&u, &v).expect("basepoint x exists");
            // `sqrt_ratio` returns the even root, which is the standard
            // basepoint x-coordinate.
            EdwardsPoint::from_affine(x, y)
        })
    }

    /// Builds an extended point from affine coordinates without validation.
    fn from_affine(x: FieldElement, y: FieldElement) -> EdwardsPoint {
        EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        }
    }

    /// Adds two points (complete formula; valid for any pair of inputs).
    pub fn add(&self, rhs: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(&self.x).mul(&rhs.y.sub(&rhs.x));
        let b = self.y.add(&self.x).mul(&rhs.y.add(&rhs.x));
        let c = self.t.mul(&d2()).mul(&rhs.t);
        let dd = self.z.mul(&rhs.z).mul_u64(2);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Doubles the point.
    pub fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().mul_u64(2);
        let dd = a.neg();
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = dd.add(&b);
        let f = g.sub(&c);
        let h = dd.sub(&b);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Negates the point.
    pub fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Subtracts `rhs` from `self`.
    pub fn sub(&self, rhs: &EdwardsPoint) -> EdwardsPoint {
        self.add(&rhs.neg())
    }

    /// Multiplies the point by a scalar (4-bit fixed-window method).
    pub fn scalar_mul(&self, k: &Scalar) -> EdwardsPoint {
        // Precompute 0P..15P.
        let mut table = [EdwardsPoint::identity(); 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = table[i - 1].add(self);
        }
        let bytes = k.to_bytes();
        let mut acc = EdwardsPoint::identity();
        let mut started = false;
        for byte_idx in (0..32).rev() {
            for nibble_idx in [1u32, 0] {
                if started {
                    acc = acc.double().double().double().double();
                }
                let nib = ((bytes[byte_idx] >> (4 * nibble_idx)) & 0x0f) as usize;
                if nib != 0 {
                    acc = acc.add(&table[nib]);
                    started = true;
                } else if started {
                    // Nothing to add this window.
                }
            }
        }
        acc
    }

    /// Multiplies the basepoint by a scalar using a precomputed table.
    ///
    /// Signing, VRF proving, and every verification perform a basepoint
    /// multiplication; a radix-16 fixed-base table (64 windows × 15
    /// multiples, built once per process) replaces the 256 doublings of
    /// the generic ladder with 63 additions.
    pub fn basepoint_mul(k: &Scalar) -> EdwardsPoint {
        static TABLE: std::sync::OnceLock<Vec<[EdwardsPoint; 15]>> = std::sync::OnceLock::new();
        let table = TABLE.get_or_init(|| {
            // window[i][j-1] = j · 16^i · B for j in 1..=15.
            let mut windows = Vec::with_capacity(64);
            let mut base = EdwardsPoint::basepoint();
            for _ in 0..64 {
                let mut row = [EdwardsPoint::identity(); 15];
                row[0] = base;
                for j in 1..15 {
                    row[j] = row[j - 1].add(&base);
                }
                // Next window's base: 16 · current base.
                base = row[14].add(&base);
                windows.push(row);
            }
            windows
        });
        let bytes = k.to_bytes();
        let mut acc = EdwardsPoint::identity();
        for (i, window) in table.iter().enumerate() {
            let byte = bytes[i / 2];
            let nib = if i % 2 == 0 { byte & 0x0f } else { byte >> 4 } as usize;
            if nib != 0 {
                acc = acc.add(&window[nib - 1]);
            }
        }
        acc
    }

    /// Computes `a·A + b·B` where B is the basepoint.
    ///
    /// This is the verification workhorse: signature verification computes
    /// `s·B − c·PK` and VRF verification computes `s·B − c·Y` and
    /// `s·H − c·Γ`.
    pub fn double_scalar_mul_basepoint(
        a: &Scalar,
        point_a: &EdwardsPoint,
        b: &Scalar,
    ) -> EdwardsPoint {
        point_a.scalar_mul(a).add(&EdwardsPoint::basepoint_mul(b))
    }

    /// Multiplies by the cofactor 8.
    pub fn mul_by_cofactor(&self) -> EdwardsPoint {
        self.double().double().double()
    }

    /// Returns true if this is the identity element.
    pub fn is_identity(&self) -> bool {
        // Identity iff x = 0 and y = z (projectively).
        self.x.is_zero() && self.y.ct_eq(&self.z)
    }

    /// Returns true if the point lies in the prime-order subgroup.
    pub fn is_torsion_free(&self) -> bool {
        use crate::scalar::Scalar;
        // ℓ·P = identity iff P has order dividing ℓ.
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        self.scalar_mul(&l_minus_1).add(self).is_identity()
    }

    /// Checks the curve equation −x² + y² = 1 + d·x²·y² in affine form.
    pub fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let x2 = x.square();
        let y2 = y.square();
        let lhs = y2.sub(&x2);
        let rhs = FieldElement::ONE.add(&d().mul(&x2).mul(&y2));
        lhs.ct_eq(&rhs)
    }

    /// Compresses to the 32-byte encoding: y with the sign of x in bit 255.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut bytes = y.to_bytes();
        bytes[31] |= (x.is_negative() as u8) << 7;
        bytes
    }

    /// Decompresses a 32-byte encoding, validating that it names a curve
    /// point.
    ///
    /// Returns `None` for encodings whose y is not on the curve or whose
    /// sign bit is inconsistent (x = 0 with the sign bit set).
    pub fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint> {
        let sign = bytes[31] >> 7 == 1;
        let y = FieldElement::from_bytes(bytes);
        let yy = y.square();
        let u = yy.sub(&FieldElement::ONE);
        let v = d().mul(&yy).add(&FieldElement::ONE);
        let mut x = FieldElement::sqrt_ratio(&u, &v)?;
        if x.is_zero() && sign {
            return None;
        }
        if sign {
            x = x.neg();
        }
        Some(EdwardsPoint::from_affine(x, y))
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // Cross-multiplied projective equality.
        self.x.mul(&other.z).ct_eq(&other.x.mul(&self.z))
            && self.y.mul(&other.z).ct_eq(&other.y.mul(&self.z))
    }
}

impl Eq for EdwardsPoint {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_is_on_curve() {
        assert!(EdwardsPoint::basepoint().is_on_curve());
    }

    #[test]
    fn basepoint_compressed_encoding_is_standard() {
        // The well-known edwards25519 basepoint encoding: 0x58 followed by
        // thirty-one 0x66 bytes (y = 4/5, x even).
        let mut expected = [0x66u8; 32];
        expected[0] = 0x58;
        assert_eq!(EdwardsPoint::basepoint().compress(), expected);
    }

    #[test]
    fn basepoint_has_order_l() {
        // ℓ·B = identity, and B itself is not the identity.
        let b = EdwardsPoint::basepoint();
        assert!(!b.is_identity());
        assert!(b.is_torsion_free());
    }

    #[test]
    fn add_identity_is_noop() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.add(&EdwardsPoint::identity()), b);
        assert_eq!(EdwardsPoint::identity().add(&b), b);
    }

    #[test]
    fn double_matches_add_self() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.double(), b.add(&b));
        let b4 = b.double().double();
        assert_eq!(b4, b.add(&b).add(&b).add(&b));
        assert!(b4.is_on_curve());
    }

    #[test]
    fn neg_cancels() {
        let b = EdwardsPoint::basepoint();
        assert!(b.add(&b.neg()).is_identity());
        assert!(b.sub(&b).is_identity());
    }

    #[test]
    fn scalar_mul_small_values() {
        let b = EdwardsPoint::basepoint();
        assert!(b.scalar_mul(&Scalar::ZERO).is_identity());
        assert_eq!(b.scalar_mul(&Scalar::ONE), b);
        assert_eq!(b.scalar_mul(&Scalar::from_u64(2)), b.double());
        let mut acc = EdwardsPoint::identity();
        for _ in 0..100 {
            acc = acc.add(&b);
        }
        assert_eq!(b.scalar_mul(&Scalar::from_u64(100)), acc);
    }

    #[test]
    fn scalar_mul_is_homomorphic() {
        let b = EdwardsPoint::basepoint();
        let k1 = Scalar::from_u64(0x1234_5678_9abc_def0);
        let k2 = Scalar::from_u64(0xfeed_face_cafe_beef);
        let lhs = b.scalar_mul(&k1.add(&k2));
        let rhs = b.scalar_mul(&k1).add(&b.scalar_mul(&k2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let b = EdwardsPoint::basepoint();
        for k in [1u64, 2, 3, 0xdeadbeef, 0xffff_ffff_ffff_ffff] {
            let p = b.scalar_mul(&Scalar::from_u64(k));
            let c = p.compress();
            let q = EdwardsPoint::decompress(&c).expect("valid encoding");
            assert_eq!(p, q, "k = {k}");
            assert_eq!(q.compress(), c);
        }
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 does not correspond to a curve point for edwards25519.
        let mut bytes = [0u8; 32];
        bytes[0] = 2;
        assert!(EdwardsPoint::decompress(&bytes).is_none());
        // Identity with the sign bit set is a non-canonical/invalid encoding.
        let mut id = EdwardsPoint::identity().compress();
        id[31] |= 0x80;
        assert!(EdwardsPoint::decompress(&id).is_none());
    }

    #[test]
    fn double_scalar_mul_matches_separate() {
        let b = EdwardsPoint::basepoint();
        let p = b.scalar_mul(&Scalar::from_u64(7777));
        let a = Scalar::from_u64(31337);
        let c = Scalar::from_u64(271828);
        let combined = EdwardsPoint::double_scalar_mul_basepoint(&a, &p, &c);
        assert_eq!(combined, p.scalar_mul(&a).add(&b.scalar_mul(&c)));
    }

    #[test]
    fn basepoint_table_matches_generic_mul() {
        let b = EdwardsPoint::basepoint();
        for k in [0u64, 1, 2, 15, 16, 255, 0xdead_beef, u64::MAX] {
            let s = Scalar::from_u64(k);
            assert_eq!(EdwardsPoint::basepoint_mul(&s), b.scalar_mul(&s), "k = {k}");
        }
        // A full-width scalar exercises every window.
        let wide = Scalar::from_bytes_mod_order(&[0xa7u8; 32]);
        assert_eq!(EdwardsPoint::basepoint_mul(&wide), b.scalar_mul(&wide));
    }

    #[test]
    fn cofactor_mul_is_three_doublings() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.mul_by_cofactor(), b.scalar_mul(&Scalar::from_u64(8)));
    }

    #[test]
    fn order_of_curve_points_after_cofactor_clearing() {
        // Any decompressed point times the cofactor lands in the prime-order
        // subgroup.
        let b = EdwardsPoint::basepoint();
        let p = b.scalar_mul(&Scalar::from_u64(12345)).mul_by_cofactor();
        assert!(p.is_torsion_free());
    }
}
