//! Arithmetic modulo ℓ, the prime order of the Curve25519 group.
//!
//! ℓ = 2^252 + 27742317777372353535851937790883648493. Scalars are held as
//! four 64-bit little-endian limbs in canonical (fully reduced) form.
//! Reduction of wide (up to 512-bit) values uses binary long division —
//! simple and easy to audit; scalar arithmetic is a negligible cost next to
//! the point multiplications it feeds.

/// The group order ℓ as four little-endian 64-bit limbs.
const L: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// An integer modulo the group order ℓ, always canonically reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Scalar(pub(crate) [u64; 4]);

impl Scalar {
    /// The scalar 0.
    pub const ZERO: Scalar = Scalar([0; 4]);
    /// The scalar 1.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Constructs a scalar from a small integer.
    pub fn from_u64(x: u64) -> Scalar {
        Scalar([x, 0, 0, 0])
    }

    /// Reduces 32 little-endian bytes modulo ℓ.
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Reduces 64 little-endian bytes modulo ℓ.
    ///
    /// A 512-bit input makes the result statistically uniform, which is how
    /// secret scalars and deterministic nonces are derived from hashes.
    pub fn from_bytes_mod_order_wide(bytes: &[u8; 64]) -> Scalar {
        let mut v = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            v[i] = u64::from_le_bytes(b);
        }
        Scalar(reduce_wide(v))
    }

    /// Parses 32 little-endian bytes, requiring canonical form.
    ///
    /// Returns `None` if the value is ≥ ℓ. Used when deserializing
    /// signatures and proofs, where accepting non-canonical scalars would
    /// make encodings malleable.
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut v = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            v[i] = u64::from_le_bytes(b);
        }
        if ge4(&v, &L) {
            None
        } else {
            Some(Scalar(v))
        }
    }

    /// Serializes to 32 little-endian bytes (canonical).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Adds two scalars modulo ℓ.
    #[allow(clippy::needless_range_loop)] // Carry chain reads clearer indexed.
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        let mut r = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            r[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        // Inputs are < ℓ < 2^253, so the sum fits in 4 limbs (no carry out).
        debug_assert_eq!(carry, 0);
        if ge4(&r, &L) {
            sub4_assign(&mut r, &L);
        }
        Scalar(r)
    }

    /// Subtracts `rhs` from `self` modulo ℓ.
    pub fn sub(&self, rhs: &Scalar) -> Scalar {
        let mut r = self.0;
        if ge4(&r, &rhs.0) {
            sub4_assign(&mut r, &rhs.0);
        } else {
            // r + ℓ - rhs; r + ℓ may carry into a fifth limb conceptually,
            // but since rhs > r and rhs < ℓ, the result is < ℓ, so computing
            // (ℓ - rhs) + r is safe in 4 limbs.
            let mut t = L;
            sub4_assign(&mut t, &rhs.0);
            let mut carry = 0u64;
            for i in 0..4 {
                let (s1, c1) = t[i].overflowing_add(r[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                t[i] = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
            debug_assert_eq!(carry, 0);
            r = t;
        }
        Scalar(r)
    }

    /// Negates the scalar modulo ℓ.
    pub fn neg(&self) -> Scalar {
        Scalar::ZERO.sub(self)
    }

    /// Multiplies two scalars modulo ℓ.
    #[allow(clippy::needless_range_loop)] // Schoolbook product indexes i+j.
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc = wide[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                wide[i + j] = acc as u64;
                carry = acc >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        Scalar(reduce_wide(wide))
    }

    /// Returns true if the scalar is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Iterates over the 256 bits of the scalar, most significant first.
    pub fn bits_msb_first(&self) -> impl Iterator<Item = bool> + '_ {
        (0..256)
            .rev()
            .map(move |i| (self.0[i / 64] >> (i % 64)) & 1 == 1)
    }
}

/// Returns true if `a >= b` (4-limb little-endian compare).
fn ge4(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// Computes `a -= b`, assuming `a >= b`.
fn sub4_assign(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
}

/// Reduces a 512-bit little-endian value modulo ℓ by binary long division.
fn reduce_wide(mut v: [u64; 8]) -> [u64; 4] {
    // ℓ has 253 bits; shifting it by up to 512 − 253 = 259 bits covers every
    // quotient bit of a 512-bit dividend.
    for shift in (0..=259).rev() {
        let shifted = shl_l(shift);
        if ge8(&v, &shifted) {
            sub8_assign(&mut v, &shifted);
        }
    }
    debug_assert_eq!(&v[4..], &[0u64; 4]);
    [v[0], v[1], v[2], v[3]]
}

/// Computes ℓ << shift as an 8-limb value.
#[allow(clippy::needless_range_loop)] // Limb shifts index two offsets of one array.
fn shl_l(shift: u32) -> [u64; 8] {
    let mut out = [0u64; 8];
    let limb_shift = (shift / 64) as usize;
    let bit_shift = shift % 64;
    for i in 0..4 {
        let idx = i + limb_shift;
        if idx < 8 {
            out[idx] |= L[i] << bit_shift;
        }
        if bit_shift > 0 && idx + 1 < 8 {
            out[idx + 1] |= L[i] >> (64 - bit_shift);
        }
    }
    out
}

fn ge8(a: &[u64; 8], b: &[u64; 8]) -> bool {
    for i in (0..8).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

fn sub8_assign(a: &mut [u64; 8], b: &[u64; 8]) {
    let mut borrow = 0u64;
    for i in 0..8 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> Scalar {
        Scalar::from_u64(x)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(s(2).add(&s(3)), s(5));
        assert_eq!(s(7).sub(&s(3)), s(4));
        assert_eq!(s(6).mul(&s(7)), s(42));
    }

    #[test]
    fn order_reduces_to_zero() {
        let l_bytes = Scalar(L).to_bytes();
        assert!(Scalar::from_bytes_mod_order(&l_bytes).is_zero());
        assert!(Scalar::from_canonical_bytes(&l_bytes).is_none());
    }

    #[test]
    fn order_minus_one_is_canonical() {
        let lm1 = Scalar(L).0;
        let mut v = lm1;
        sub4_assign(&mut v, &[1, 0, 0, 0]);
        let sc = Scalar::from_canonical_bytes(&Scalar(v).to_bytes()).unwrap();
        assert_eq!(sc.add(&Scalar::ONE), Scalar::ZERO);
    }

    #[test]
    fn neg_roundtrip() {
        let x = s(0x1234_5678);
        assert_eq!(x.add(&x.neg()), Scalar::ZERO);
        assert_eq!(Scalar::ZERO.neg(), Scalar::ZERO);
    }

    #[test]
    fn wide_reduction_of_known_multiple() {
        // q·ℓ + r must reduce to r for a handful of small q.
        for q in 1u64..5 {
            for r in [0u64, 1, 12345] {
                let mut wide = [0u64; 8];
                // wide = q * L + r.
                let mut carry: u128 = r as u128;
                for i in 0..4 {
                    let acc = (L[i] as u128) * (q as u128) + carry;
                    wide[i] = acc as u64;
                    carry = acc >> 64;
                }
                wide[4] = carry as u64;
                assert_eq!(reduce_wide(wide), Scalar::from_u64(r).0, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn wide_reduction_max_value() {
        // 2^512 - 1 mod ℓ must be < ℓ and consistent under re-reduction.
        let v = [u64::MAX; 8];
        let r = reduce_wide(v);
        assert!(ge4(&L, &r) && r != L);
        let again = Scalar(r).add(&Scalar::ZERO);
        assert_eq!(again.0, r);
    }

    #[test]
    fn mul_matches_repeated_add() {
        let x = s(0xabcdef);
        let mut acc = Scalar::ZERO;
        for _ in 0..37 {
            acc = acc.add(&x);
        }
        assert_eq!(x.mul(&s(37)), acc);
    }

    #[test]
    fn bits_iterator_msb_first() {
        let x = s(0b1011);
        let bits: Vec<bool> = x.bits_msb_first().collect();
        assert_eq!(bits.len(), 256);
        assert_eq!(&bits[252..], &[true, false, true, true]);
        assert!(bits[..252].iter().all(|&b| !b));
    }

    #[test]
    fn sub_wraps() {
        let r = Scalar::ZERO.sub(&Scalar::ONE);
        assert_eq!(r.add(&Scalar::ONE), Scalar::ZERO);
        // ℓ - 1 is even? ℓ is odd (low limb ends in 0xed), so ℓ-1 ends 0xec.
        assert_eq!(r.to_bytes()[0], 0xec);
    }
}
