//! Keys and Schnorr signatures over edwards25519.
//!
//! The paper's prototype signs every gossip message with an Ed25519-style
//! signature over Curve 25519 (§9). This module provides an equivalent
//! scheme built on the in-tree curve: deterministic Schnorr with a SHA-256
//! Fiat–Shamir challenge. Key sizes (32-byte public keys), signature sizes
//! (64 bytes), and verification cost (one double-scalar multiplication) all
//! match Ed25519; see DESIGN.md §4 for the substitution rationale.

use crate::edwards::EdwardsPoint;
use crate::error::CryptoError;
use crate::scalar::Scalar;
use crate::sha256::{sha256_concat, Sha256};

/// Domain-separation tags. Distinct tags guarantee hashes used as secret
/// scalars, nonces, and challenges can never collide across contexts.
const DOM_SK: &[u8] = b"algorand-repro/sk/v1";
const DOM_NONCE: &[u8] = b"algorand-repro/nonce/v1";
const DOM_CHAL: &[u8] = b"algorand-repro/chal/v1";

/// Expands `parts` into 64 uniform bytes using two domain-separated SHA-256
/// invocations, then reduces mod ℓ.
pub(crate) fn hash_to_scalar(domain: &[u8], parts: &[&[u8]]) -> Scalar {
    let mut wide = [0u8; 64];
    for (i, half) in wide.chunks_exact_mut(32).enumerate() {
        let mut h = Sha256::new();
        h.update(domain);
        h.update(&[i as u8]);
        for p in parts {
            h.update(&(p.len() as u64).to_le_bytes());
            h.update(p);
        }
        half.copy_from_slice(&h.finalize());
    }
    Scalar::from_bytes_mod_order_wide(&wide)
}

/// A secret signing key: a 32-byte seed and the scalar derived from it.
#[derive(Clone)]
pub struct SecretKey {
    seed: [u8; 32],
    scalar: Scalar,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

impl SecretKey {
    /// Derives a secret key deterministically from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> SecretKey {
        let scalar = hash_to_scalar(DOM_SK, &[&seed]);
        SecretKey { seed, scalar }
    }

    /// The secret scalar (used by the VRF, which shares the keypair).
    pub(crate) fn scalar(&self) -> &Scalar {
        &self.scalar
    }

    /// Computes the corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        let point = EdwardsPoint::basepoint_mul(&self.scalar);
        PublicKey {
            bytes: point.compress(),
            point,
        }
    }

    /// Derives the deterministic per-message nonce scalar.
    pub(crate) fn nonce(&self, domain: &[u8], msg_parts: &[&[u8]]) -> Scalar {
        let mut parts: Vec<&[u8]> = vec![&self.seed[..], domain];
        parts.extend_from_slice(msg_parts);
        hash_to_scalar(DOM_NONCE, &parts)
    }
}

/// A public verification key: a compressed point plus its decompression.
///
/// The decompressed point is cached because vote verification (ProcessMsg,
/// Algorithm 6) performs many verifications against the same key.
#[derive(Clone, Copy)]
pub struct PublicKey {
    bytes: [u8; 32],
    point: EdwardsPoint,
}

impl PublicKey {
    /// Parses a compressed public key, validating the point.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] if the bytes do not name a
    /// point in the prime-order subgroup.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<PublicKey, CryptoError> {
        let point = EdwardsPoint::decompress(bytes).ok_or(CryptoError::InvalidPoint)?;
        if !point.is_torsion_free() || point.is_identity() {
            return Err(CryptoError::InvalidPoint);
        }
        Ok(PublicKey {
            bytes: *bytes,
            point,
        })
    }

    /// The 32-byte compressed encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.bytes
    }

    /// Borrow the compressed encoding.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    pub(crate) fn point(&self) -> &EdwardsPoint {
        &self.point
    }
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for PublicKey {}

impl std::hash::Hash for PublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bytes.hash(state);
    }
}

impl PartialOrd for PublicKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PublicKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bytes.cmp(&other.bytes)
    }
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PublicKey({:02x}{:02x}{:02x}{:02x}..)",
            self.bytes[0], self.bytes[1], self.bytes[2], self.bytes[3]
        )
    }
}

/// A secret/public key pair.
#[derive(Clone, Debug)]
pub struct Keypair {
    /// The secret half.
    pub sk: SecretKey,
    /// The public half.
    pub pk: PublicKey,
}

impl Keypair {
    /// Generates a fresh keypair from the given randomness source.
    pub fn generate(rng: &mut crate::rng::Rng) -> Keypair {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Keypair::from_seed(seed)
    }

    /// Derives a keypair deterministically from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Keypair {
        let sk = SecretKey::from_seed(seed);
        let pk = sk.public_key();
        Keypair { sk, pk }
    }
}

/// A 64-byte Schnorr signature (R, s).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    r_bytes: [u8; 32],
    s: Scalar,
}

/// Length of a serialized signature in bytes.
pub const SIGNATURE_LEN: usize = 64;

impl Signature {
    /// Serializes to 64 bytes: compressed R then s.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r_bytes);
        out[32..].copy_from_slice(&self.s.to_bytes());
        out
    }

    /// Parses a 64-byte signature.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] when `s` is non-canonical
    /// (which would otherwise make signatures malleable).
    pub fn from_bytes(bytes: &[u8; 64]) -> Result<Signature, CryptoError> {
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&bytes[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&bytes[32..]);
        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(CryptoError::InvalidSignature)?;
        Ok(Signature { r_bytes, s })
    }
}

fn challenge(r_bytes: &[u8; 32], pk: &PublicKey, msg: &[u8]) -> Scalar {
    hash_to_scalar(DOM_CHAL, &[r_bytes, pk.as_bytes(), msg])
}

/// Signs `msg` with the secret key, deterministically.
pub fn sign(keypair: &Keypair, msg: &[u8]) -> Signature {
    let k = keypair.sk.nonce(b"sig", &[msg]);
    let r_point = EdwardsPoint::basepoint_mul(&k);
    let r_bytes = r_point.compress();
    let c = challenge(&r_bytes, &keypair.pk, msg);
    let s = k.add(&c.mul(keypair.sk.scalar()));
    Signature { r_bytes, s }
}

/// Verifies a signature on `msg` under `pk`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidSignature`] if the equation
/// `s·B = R + c·PK` does not hold.
pub fn verify(pk: &PublicKey, msg: &[u8], sig: &Signature) -> Result<(), CryptoError> {
    let c = challenge(&sig.r_bytes, pk, msg);
    // R' = s·B − c·PK must equal R.
    let r_prime = EdwardsPoint::double_scalar_mul_basepoint(&c.neg(), pk.point(), &sig.s);
    if r_prime.compress() == sig.r_bytes {
        Ok(())
    } else {
        Err(CryptoError::InvalidSignature)
    }
}

/// Convenience: hash used to bind structured messages before signing.
pub fn message_digest(parts: &[&[u8]]) -> [u8; 32] {
    sha256_concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let keypair = kp(1);
        let sig = sign(&keypair, b"hello algorand");
        assert!(verify(&keypair.pk, b"hello algorand", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let keypair = kp(2);
        let sig = sign(&keypair, b"msg A");
        assert!(verify(&keypair.pk, b"msg B", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let a = kp(3);
        let b = kp(4);
        let sig = sign(&a, b"msg");
        assert!(verify(&b.pk, b"msg", &sig).is_err());
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let keypair = kp(5);
        let sig = sign(&keypair, b"msg");
        let mut bytes = sig.to_bytes();
        bytes[0] ^= 1;
        if let Ok(tampered) = Signature::from_bytes(&bytes) {
            assert!(verify(&keypair.pk, b"msg", &tampered).is_err());
        } // An unparseable R is equally a rejection.
    }

    #[test]
    fn signature_is_deterministic() {
        let keypair = kp(6);
        assert_eq!(
            sign(&keypair, b"m").to_bytes(),
            sign(&keypair, b"m").to_bytes()
        );
        assert_ne!(
            sign(&keypair, b"m").to_bytes(),
            sign(&keypair, b"n").to_bytes()
        );
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let keypair = kp(7);
        let sig = sign(&keypair, b"roundtrip");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn noncanonical_s_rejected() {
        let keypair = kp(8);
        let sig = sign(&keypair, b"msg");
        let mut bytes = sig.to_bytes();
        // Force s into non-canonical territory by setting high bits ≥ ℓ.
        for b in bytes[32..].iter_mut() {
            *b = 0xff;
        }
        bytes[63] = 0x1f;
        assert!(Signature::from_bytes(&bytes).is_err());
    }

    #[test]
    fn public_key_parse_roundtrip() {
        let keypair = kp(9);
        let parsed = PublicKey::from_bytes(keypair.pk.as_bytes()).unwrap();
        assert_eq!(parsed, keypair.pk);
    }

    #[test]
    fn public_key_rejects_garbage() {
        // y = 2 is not the y-coordinate of any curve point.
        let mut not_on_curve = [0u8; 32];
        not_on_curve[0] = 2;
        assert!(PublicKey::from_bytes(&not_on_curve).is_err());
        // The identity point must be rejected.
        let id = crate::edwards::EdwardsPoint::identity().compress();
        assert!(PublicKey::from_bytes(&id).is_err());
    }

    #[test]
    fn generated_keys_differ() {
        let mut rng = Rng::seed_from_u64(42);
        let a = Keypair::generate(&mut rng);
        let b = Keypair::generate(&mut rng);
        assert_ne!(a.pk, b.pk);
    }

    #[test]
    fn keys_are_deterministic_from_seed() {
        assert_eq!(kp(10).pk, kp(10).pk);
        assert_ne!(kp(10).pk, kp(11).pk);
    }
}
