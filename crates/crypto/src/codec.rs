//! Canonical byte encoding shared by every serialized protocol type.
//!
//! Block and transaction hashes — and the gossip wire format — are defined
//! over these encodings, so they must be deterministic: fixed-width
//! little-endian integers, length-prefixed byte strings, no optional
//! framing ambiguity. The module lives at the bottom of the crate stack so
//! consensus messages (`algorand-ba`), ledger types (`algorand-ledger`),
//! and the node wire protocol (`algorand-core`) can all share it.

/// Errors from decoding a canonical byte stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A tag or length field had an invalid value.
    Invalid,
    /// Trailing bytes remained after the top-level value.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecodeError::UnexpectedEnd => "unexpected end of input",
            DecodeError::Invalid => "invalid tag or length",
            DecodeError::TrailingBytes => "trailing bytes after value",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over bytes being decoded.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Bytes consumed so far — the offset of the next read. Transport
    /// layers report this alongside a [`DecodeError`] so a malformed
    /// frame is attributable to a position in the received bytes.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Fails unless the input was fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a fixed 32-byte array.
    pub fn bytes32(&mut self) -> Result<[u8; 32], DecodeError> {
        let b = self.take(32)?;
        let mut a = [0u8; 32];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// Reads a fixed-length byte slice.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads a u32-length-prefixed byte string, bounded by `max_len`.
    pub fn var_bytes(&mut self, max_len: usize) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        if len > max_len {
            return Err(DecodeError::Invalid);
        }
        self.take(len)
    }
}

/// Encoding helpers on the output buffer.
pub trait WriteExt {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Appends a little-endian u64.
    fn put_u64(&mut self, v: u64);
    /// Appends raw bytes with no length prefix.
    fn put_bytes(&mut self, v: &[u8]);
    /// Appends a u32-length-prefixed byte string.
    fn put_var_bytes(&mut self, v: &[u8]);
}

impl WriteExt for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_bytes(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }

    fn put_var_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0123_4567_89ab_cdef);
        buf.put_bytes(&[1, 2, 3]);
        buf.put_var_bytes(b"hello");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.var_bytes(16).unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn short_input_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn oversized_var_bytes_rejected() {
        let mut buf = Vec::new();
        buf.put_var_bytes(&[0u8; 100]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.var_bytes(50).unwrap_err(), DecodeError::Invalid);
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = vec![1u8, 2, 3];
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn bytes32_roundtrip() {
        let mut buf = Vec::new();
        buf.put_bytes(&[9u8; 32]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes32().unwrap(), [9u8; 32]);
        r.finish().unwrap();
    }
}
