//! Verifiable random function (ECVRF) over edwards25519.
//!
//! Algorand's cryptographic sortition (§5) is built on a VRF \[39\]; the
//! paper's prototype uses the elliptic-curve VRF of Goldberg et al. \[28\].
//! This module implements the same ECVRF construction shape over the
//! in-tree curve:
//!
//! * `H = hash_to_curve(pk, α)` by try-and-increment, cofactor-cleared;
//! * `Γ = sk · H`;
//! * a Fiat–Shamir DLEQ proof `(c, s)` that `log_B(PK) = log_H(Γ)`;
//! * output `β = SHA-256(domain ‖ compress(8·Γ))`.
//!
//! The three properties sortition relies on hold by construction:
//! **uniqueness** (β is determined by (pk, α); the DLEQ proof pins Γ),
//! **pseudorandomness** (β is a hash of a Diffie–Hellman-style group
//! element, unpredictable without sk), and **verifiability** (anyone with
//! pk checks the proof). Security holds even for adversarially chosen keys
//! because `hash_to_curve` binds pk into H.

use crate::edwards::EdwardsPoint;
use crate::error::CryptoError;
use crate::scalar::Scalar;
use crate::sha256::Sha256;
use crate::sig::{hash_to_scalar, Keypair, PublicKey};

const DOM_H2C: &[u8] = b"algorand-repro/vrf-h2c/v1";
const DOM_DLEQ: &[u8] = b"algorand-repro/vrf-dleq/v1";
const DOM_OUT: &[u8] = b"algorand-repro/vrf-out/v1";

/// Number of bytes in a VRF output.
pub const VRF_OUTPUT_LEN: usize = 32;

/// Number of bytes in a serialized VRF proof: Γ (32) ‖ c (32) ‖ s (32).
pub const VRF_PROOF_LEN: usize = 96;

/// The pseudorandom 32-byte output of a VRF evaluation.
///
/// This is the `hash` of Algorithms 1–2: uniformly distributed to anyone
/// who does not hold the secret key, and uniquely determined by
/// `(pk, input)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct VrfOutput(pub [u8; VRF_OUTPUT_LEN]);

impl VrfOutput {
    /// Interprets the output as a fraction in [0, 1): `hash / 2^hashlen`.
    ///
    /// Sortition (Algorithm 1) compares this value against binomial CDF
    /// intervals. An `f64` retains 53 bits of the 256-bit output, far more
    /// precision than the CDF arithmetic it is compared against.
    pub fn as_unit_fraction(&self) -> f64 {
        // Use the *big-endian* prefix so that the comparison respects the
        // natural ordering of the hash as a 256-bit integer. Keeping 53 bits
        // guarantees the result is strictly below 1.0 (an all-ones prefix
        // would otherwise round up to exactly 1.0).
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&self.0[..8]);
        let x = u64::from_be_bytes(prefix) >> 11;
        (x as f64) / (1u64 << 53) as f64
    }
}

/// A VRF proof π = (Γ, c, s) showing that an output is correct.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VrfProof {
    gamma: [u8; 32],
    c: Scalar,
    s: Scalar,
}

impl VrfProof {
    /// Serializes the proof to 96 bytes.
    pub fn to_bytes(&self) -> [u8; VRF_PROOF_LEN] {
        let mut out = [0u8; VRF_PROOF_LEN];
        out[..32].copy_from_slice(&self.gamma);
        out[32..64].copy_from_slice(&self.c.to_bytes());
        out[64..].copy_from_slice(&self.s.to_bytes());
        out
    }

    /// Parses a 96-byte proof.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidProof`] for non-canonical scalars; the
    /// Γ point is validated during [`verify`].
    pub fn from_bytes(bytes: &[u8; VRF_PROOF_LEN]) -> Result<VrfProof, CryptoError> {
        let mut gamma = [0u8; 32];
        gamma.copy_from_slice(&bytes[..32]);
        let mut cb = [0u8; 32];
        cb.copy_from_slice(&bytes[32..64]);
        let mut sb = [0u8; 32];
        sb.copy_from_slice(&bytes[64..]);
        let c = Scalar::from_canonical_bytes(&cb).ok_or(CryptoError::InvalidProof)?;
        let s = Scalar::from_canonical_bytes(&sb).ok_or(CryptoError::InvalidProof)?;
        Ok(VrfProof { gamma, c, s })
    }
}

/// Hashes `(pk, alpha)` to a point in the prime-order subgroup.
fn hash_to_curve(pk: &PublicKey, alpha: &[u8]) -> EdwardsPoint {
    let mut ctr: u32 = 0;
    loop {
        let mut h = Sha256::new();
        h.update(DOM_H2C);
        h.update(pk.as_bytes());
        h.update(&(alpha.len() as u64).to_le_bytes());
        h.update(alpha);
        h.update(&ctr.to_le_bytes());
        let candidate = h.finalize();
        if let Some(p) = EdwardsPoint::decompress(&candidate) {
            let cleared = p.mul_by_cofactor();
            if !cleared.is_identity() {
                return cleared;
            }
        }
        ctr += 1;
    }
}

/// Derives the output β from Γ.
fn output_from_gamma(gamma: &EdwardsPoint) -> VrfOutput {
    let cleared = gamma.mul_by_cofactor();
    let mut h = Sha256::new();
    h.update(DOM_OUT);
    h.update(&cleared.compress());
    VrfOutput(h.finalize())
}

fn dleq_challenge(
    pk: &PublicKey,
    h_point: &[u8; 32],
    gamma: &[u8; 32],
    u: &[u8; 32],
    v: &[u8; 32],
) -> Scalar {
    hash_to_scalar(DOM_DLEQ, &[pk.as_bytes(), h_point, gamma, u, v])
}

/// Evaluates the VRF on `alpha`, returning the output and a proof.
///
/// This is `VRF_sk(x)` of §5: the output is pseudorandom to anyone who
/// does not know the secret key, and the proof lets anyone with the public
/// key verify it.
pub fn prove(keypair: &Keypair, alpha: &[u8]) -> (VrfOutput, VrfProof) {
    let h_point = hash_to_curve(&keypair.pk, alpha);
    let h_bytes = h_point.compress();
    let gamma = h_point.scalar_mul(keypair.sk.scalar());
    let gamma_bytes = gamma.compress();
    // Deterministic nonce bound to the H point.
    let k = keypair.sk.nonce(b"vrf", &[&h_bytes, alpha]);
    let u = EdwardsPoint::basepoint_mul(&k).compress();
    let v = h_point.scalar_mul(&k).compress();
    let c = dleq_challenge(&keypair.pk, &h_bytes, &gamma_bytes, &u, &v);
    let s = k.add(&c.mul(keypair.sk.scalar()));
    let proof = VrfProof {
        gamma: gamma_bytes,
        c,
        s,
    };
    (output_from_gamma(&gamma), proof)
}

/// Verifies a VRF proof and returns the output it certifies.
///
/// This is `VerifyVRF_pk(hash, π, x)` of Algorithm 2; on success the caller
/// compares or consumes the returned [`VrfOutput`].
///
/// # Errors
///
/// Returns [`CryptoError::InvalidProof`] when Γ is not a valid point or
/// the DLEQ equations do not hold.
pub fn verify(pk: &PublicKey, alpha: &[u8], proof: &VrfProof) -> Result<VrfOutput, CryptoError> {
    let gamma = EdwardsPoint::decompress(&proof.gamma).ok_or(CryptoError::InvalidProof)?;
    let h_point = hash_to_curve(pk, alpha);
    let h_bytes = h_point.compress();
    // U = s·B − c·PK and V = s·H − c·Γ; for an honest proof these equal
    // k·B and k·H respectively.
    let u = EdwardsPoint::double_scalar_mul_basepoint(&proof.c.neg(), pk.point(), &proof.s);
    let v = h_point
        .scalar_mul(&proof.s)
        .sub(&gamma.scalar_mul(&proof.c));
    let c_prime = dleq_challenge(pk, &h_bytes, &proof.gamma, &u.compress(), &v.compress());
    if c_prime == proof.c {
        Ok(output_from_gamma(&gamma))
    } else {
        Err(CryptoError::InvalidProof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    #[test]
    fn prove_verify_roundtrip() {
        let keypair = kp(1);
        let (out, proof) = prove(&keypair, b"seed||role");
        let verified = verify(&keypair.pk, b"seed||role", &proof).unwrap();
        assert_eq!(out, verified);
    }

    #[test]
    fn output_is_deterministic_and_input_sensitive() {
        let keypair = kp(2);
        let (o1, _) = prove(&keypair, b"alpha");
        let (o2, _) = prove(&keypair, b"alpha");
        let (o3, _) = prove(&keypair, b"beta");
        assert_eq!(o1, o2);
        assert_ne!(o1, o3);
    }

    #[test]
    fn different_keys_different_outputs() {
        let (o1, _) = prove(&kp(3), b"alpha");
        let (o2, _) = prove(&kp(4), b"alpha");
        assert_ne!(o1, o2);
    }

    #[test]
    fn verify_rejects_wrong_input() {
        let keypair = kp(5);
        let (_, proof) = prove(&keypair, b"alpha");
        assert!(verify(&keypair.pk, b"beta", &proof).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let a = kp(6);
        let b = kp(7);
        let (_, proof) = prove(&a, b"alpha");
        assert!(verify(&b.pk, b"alpha", &proof).is_err());
    }

    #[test]
    fn verify_rejects_tampered_proof() {
        let keypair = kp(8);
        let (_, proof) = prove(&keypair, b"alpha");
        let mut bytes = proof.to_bytes();
        bytes[40] ^= 0x01; // Perturb c.
        if let Ok(tampered) = VrfProof::from_bytes(&bytes) {
            assert!(verify(&keypair.pk, b"alpha", &tampered).is_err())
        }
    }

    #[test]
    fn proof_serialization_roundtrip() {
        let keypair = kp(9);
        let (_, proof) = prove(&keypair, b"alpha");
        let parsed = VrfProof::from_bytes(&proof.to_bytes()).unwrap();
        assert_eq!(parsed, proof);
        // And the parsed proof still verifies.
        assert!(verify(&keypair.pk, b"alpha", &parsed).is_ok());
    }

    #[test]
    fn unit_fraction_in_range_and_ordered() {
        let zero = VrfOutput([0u8; 32]);
        let max = VrfOutput([0xff; 32]);
        assert_eq!(zero.as_unit_fraction(), 0.0);
        assert!(max.as_unit_fraction() < 1.0);
        assert!(max.as_unit_fraction() > 0.999);
        let mid = VrfOutput({
            let mut b = [0u8; 32];
            b[0] = 0x80;
            b
        });
        assert!((mid.as_unit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hash_to_curve_lands_in_subgroup() {
        let keypair = kp(10);
        for alpha in [b"a".as_slice(), b"bb", b"ccc", b""] {
            let p = hash_to_curve(&keypair.pk, alpha);
            assert!(p.is_on_curve());
            assert!(p.is_torsion_free());
            assert!(!p.is_identity());
        }
    }

    #[test]
    fn outputs_look_uniform_in_top_bit() {
        // With 64 samples the top bit should not be constant; this is a
        // smoke test for gross bias, not a statistical suite.
        let keypair = kp(11);
        let mut ones = 0;
        for i in 0u32..64 {
            let (out, _) = prove(&keypair, &i.to_le_bytes());
            ones += (out.0[0] >> 7) as u32;
        }
        assert!(ones > 10 && ones < 54, "top-bit count {ones}");
    }
}
