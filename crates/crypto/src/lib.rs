//! Cryptographic substrate for the Algorand reproduction.
//!
//! Everything here is implemented from scratch (no external cryptography
//! crates): SHA-256, the Curve25519 base field, the edwards25519 group,
//! scalar arithmetic modulo the group order, deterministic Schnorr
//! signatures, and an ECVRF-style verifiable random function — the
//! primitives §5 and §9 of the paper build on.
//!
//! # Quick start
//!
//! ```
//! use algorand_crypto::{Keypair, sig, vrf};
//!
//! let keypair = Keypair::from_seed([7u8; 32]);
//!
//! // Sign and verify a message (every gossip message in Algorand is signed).
//! let s = sig::sign(&keypair, b"vote");
//! assert!(sig::verify(&keypair.pk, b"vote", &s).is_ok());
//!
//! // Evaluate the VRF (the basis of cryptographic sortition).
//! let (output, proof) = vrf::prove(&keypair, b"seed||role");
//! assert_eq!(vrf::verify(&keypair.pk, b"seed||role", &proof).unwrap(), output);
//! ```

pub mod codec;
pub mod edwards;
pub mod error;
pub mod field;
pub mod rng;
pub mod scalar;
pub mod sha256;
pub mod sig;
pub mod vrf;

pub use error::CryptoError;
pub use sha256::{sha256, sha256_concat, Digest};
pub use sig::{Keypair, PublicKey, SecretKey, Signature};
pub use vrf::{VrfOutput, VrfProof};
