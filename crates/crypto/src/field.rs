//! Arithmetic in GF(2^255 − 19), the base field of Curve25519.
//!
//! Elements are held in a radix-2^51 representation: five 64-bit limbs, each
//! nominally below 2^52. This is the standard unsaturated representation; it
//! lets products be accumulated in `u128` without overflow and keeps carry
//! propagation cheap. All public operations accept and return *weakly
//! reduced* elements (limbs < 2^52); [`FieldElement::to_bytes`] performs the
//! full canonical reduction.

/// Mask selecting the low 51 bits of a limb.
const LOW_51: u64 = (1u64 << 51) - 1;

/// An element of GF(2^255 − 19).
#[derive(Clone, Copy, Debug)]
pub struct FieldElement(pub(crate) [u64; 5]);

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0; 5]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// Constructs the element representing the small integer `x`.
    pub fn from_u64(x: u64) -> FieldElement {
        FieldElement([x & LOW_51, x >> 51, 0, 0, 0])
    }

    /// Parses 32 little-endian bytes as a field element.
    ///
    /// The top bit (bit 255) is ignored, matching the Curve25519 convention
    /// where that bit carries the sign of the x-coordinate in compressed
    /// points. Values in [p, 2^255) are accepted and reduced.
    pub fn from_bytes(bytes: &[u8; 32]) -> FieldElement {
        let load8 = |b: &[u8]| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(b);
            u64::from_le_bytes(v)
        };
        FieldElement([
            load8(&bytes[0..8]) & LOW_51,
            (load8(&bytes[6..14]) >> 3) & LOW_51,
            (load8(&bytes[12..20]) >> 6) & LOW_51,
            (load8(&bytes[19..27]) >> 1) & LOW_51,
            (load8(&bytes[24..32]) >> 12) & LOW_51,
        ])
    }

    /// Serializes to 32 little-endian bytes in fully reduced (canonical) form.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut l = self.0;
        // Propagate carries until every limb is below 2^51. Two passes
        // suffice for weakly reduced inputs; loop defensively anyway.
        for _ in 0..4 {
            let mut carry = 0u64;
            for limb in l.iter_mut() {
                let v = *limb + carry;
                *limb = v & LOW_51;
                carry = v >> 51;
            }
            l[0] += 19 * carry;
            if l.iter().all(|&x| x <= LOW_51) && l[0] <= LOW_51 {
                break;
            }
        }
        // Final conditional subtraction of p = 2^255 - 19.
        let p = [LOW_51 - 18, LOW_51, LOW_51, LOW_51, LOW_51];
        let ge_p = {
            let mut ge = true;
            for i in (0..5).rev() {
                if l[i] > p[i] {
                    break;
                }
                if l[i] < p[i] {
                    ge = false;
                    break;
                }
            }
            ge
        };
        if ge_p {
            let mut borrow = 0i128;
            for i in 0..5 {
                let v = l[i] as i128 - p[i] as i128 + borrow;
                if v < 0 {
                    l[i] = (v + (1i128 << 51)) as u64;
                    borrow = -1;
                } else {
                    l[i] = v as u64;
                    borrow = 0;
                }
            }
            debug_assert_eq!(borrow, 0);
        }
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in l {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = acc as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        while idx < 32 {
            out[idx] = acc as u8;
            acc >>= 8;
            idx += 1;
        }
        out
    }

    /// Adds two elements.
    #[allow(clippy::needless_range_loop)] // Lockstep carry chains read clearer indexed.
    pub fn add(&self, rhs: &FieldElement) -> FieldElement {
        let mut r = [0u64; 5];
        for i in 0..5 {
            r[i] = self.0[i] + rhs.0[i];
        }
        FieldElement(r).weak_reduce()
    }

    /// Subtracts `rhs` from `self`.
    #[allow(clippy::needless_range_loop)] // Lockstep carry chains read clearer indexed.
    pub fn sub(&self, rhs: &FieldElement) -> FieldElement {
        // Add 16p limb-wise before subtracting so no limb underflows even
        // for inputs with limbs up to 2^52.
        const BIAS0: u64 = (LOW_51 - 18) << 4;
        const BIAS: u64 = LOW_51 << 4;
        let mut r = [0u64; 5];
        r[0] = self.0[0] + BIAS0 - rhs.0[0];
        for i in 1..5 {
            r[i] = self.0[i] + BIAS - rhs.0[i];
        }
        FieldElement(r).weak_reduce()
    }

    /// Negates the element.
    pub fn neg(&self) -> FieldElement {
        FieldElement::ZERO.sub(self)
    }

    /// Multiplies two elements.
    #[allow(clippy::needless_range_loop)] // Lockstep carry chains read clearer indexed.
    pub fn mul(&self, rhs: &FieldElement) -> FieldElement {
        let a = &self.0;
        let b = &rhs.0;
        let m = |x: u64, y: u64| (x as u128) * (y as u128);
        // 19-fold the limbs of b that wrap past 2^255.
        let b1_19 = 19 * b[1];
        let b2_19 = 19 * b[2];
        let b3_19 = 19 * b[3];
        let b4_19 = 19 * b[4];
        let r0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let r1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let r2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        FieldElement::carry_wide([r0, r1, r2, r3, r4])
    }

    /// Squares the element.
    pub fn square(&self) -> FieldElement {
        self.mul(self)
    }

    /// Multiplies by the small constant `k`.
    #[allow(clippy::needless_range_loop)] // Lockstep carry chains read clearer indexed.
    pub fn mul_u64(&self, k: u64) -> FieldElement {
        debug_assert!(k < (1 << 51));
        let mut r = [0u128; 5];
        for i in 0..5 {
            r[i] = (self.0[i] as u128) * (k as u128);
        }
        FieldElement::carry_wide(r)
    }

    fn carry_wide(mut r: [u128; 5]) -> FieldElement {
        // Two carry passes bring every limb below 2^52.
        for _ in 0..2 {
            let mut carry: u128 = 0;
            for limb in r.iter_mut() {
                let v = *limb + carry;
                *limb = v & (LOW_51 as u128);
                carry = v >> 51;
            }
            r[0] += 19 * carry;
        }
        FieldElement([
            r[0] as u64,
            r[1] as u64,
            r[2] as u64,
            r[3] as u64,
            r[4] as u64,
        ])
    }

    fn weak_reduce(self) -> FieldElement {
        let mut l = self.0;
        let mut carry = 0u64;
        for limb in l.iter_mut() {
            let v = *limb + carry;
            *limb = v & LOW_51;
            carry = v >> 51;
        }
        l[0] += 19 * carry;
        FieldElement(l)
    }

    /// Raises the element to the power given by 32 little-endian exponent
    /// bytes, by square-and-multiply.
    pub fn pow(&self, exp_le: &[u8; 32]) -> FieldElement {
        let mut acc = FieldElement::ONE;
        for byte in exp_le.iter().rev() {
            for bit in (0..8).rev() {
                acc = acc.square();
                if (byte >> bit) & 1 == 1 {
                    acc = acc.mul(self);
                }
            }
        }
        acc
    }

    /// Computes the multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns zero for a zero input (there is no inverse; callers that care
    /// must check [`FieldElement::is_zero`] first).
    pub fn invert(&self) -> FieldElement {
        // Exponent p - 2 = 2^255 - 21, little-endian bytes.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow(&exp)
    }

    /// Returns true if the element is canonically zero.
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Returns true if the canonical encoding has its lowest bit set.
    ///
    /// This is the "negative" convention used for point compression.
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Compares for equality after canonical reduction.
    pub fn ct_eq(&self, other: &FieldElement) -> bool {
        self.to_bytes() == other.to_bytes()
    }

    /// The square root of −1 modulo p (one of the two roots).
    pub fn sqrt_m1() -> FieldElement {
        static SQRT_M1: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
        *SQRT_M1.get_or_init(|| {
            // 2^((p-1)/4); (p-1)/4 = 2^253 - 5.
            let mut exp = [0xffu8; 32];
            exp[0] = 0xfb;
            exp[31] = 0x1f;
            FieldElement::from_u64(2).pow(&exp)
        })
    }

    /// Computes `sqrt(u/v)` if it exists.
    ///
    /// Returns `Some(x)` with `v·x² = u` and `x` non-negative (lowest bit of
    /// the canonical encoding clear), or `None` when `u/v` is a
    /// non-residue. Used by Edwards point decompression.
    pub fn sqrt_ratio(u: &FieldElement, v: &FieldElement) -> Option<FieldElement> {
        // Candidate x = u * v^3 * (u * v^7)^((p-5)/8).
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        // Exponent (p-5)/8 = 2^252 - 3.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow(&exp));
        let vx2 = v.mul(&x.square());
        if !vx2.ct_eq(u) {
            if vx2.ct_eq(&u.neg()) {
                x = x.mul(&FieldElement::sqrt_m1());
            } else {
                return None;
            }
        }
        if x.is_negative() {
            x = x.neg();
        }
        Some(x)
    }
}

impl PartialEq for FieldElement {
    fn eq(&self, other: &Self) -> bool {
        self.ct_eq(other)
    }
}

impl Eq for FieldElement {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(x: u64) -> FieldElement {
        FieldElement::from_u64(x)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(fe(2).add(&fe(3)), fe(5));
        assert_eq!(fe(7).sub(&fe(3)), fe(4));
        assert_eq!(fe(6).mul(&fe(7)), fe(42));
        assert_eq!(fe(5).square(), fe(25));
        assert_eq!(fe(9).mul_u64(9), fe(81));
    }

    #[test]
    fn subtraction_wraps_mod_p() {
        // 0 - 1 = p - 1 = 2^255 - 20.
        let m1 = fe(0).sub(&fe(1));
        let bytes = m1.to_bytes();
        assert_eq!(bytes[0], 0xec);
        assert_eq!(bytes[31], 0x7f);
        for &b in &bytes[1..31] {
            assert_eq!(b, 0xff);
        }
        assert_eq!(m1.add(&fe(1)), fe(0));
    }

    #[test]
    fn noncanonical_bytes_reduce() {
        // 2^255 - 19 encodes the same element as 0 (after masking bit 255,
        // p itself is representable and must reduce to zero).
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let z = FieldElement::from_bytes(&p_bytes);
        assert!(z.is_zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        bytes[31] &= 0x7f;
        let x = FieldElement::from_bytes(&bytes);
        // Roundtrip holds when the value is below p (true here with byte 31
        // far below 0x7f after the multiply pattern; enforce it anyway).
        let back = x.to_bytes();
        assert_eq!(FieldElement::from_bytes(&back), x);
    }

    #[test]
    fn invert_roundtrip() {
        for v in [1u64, 2, 3, 121665, 121666, 0xdeadbeef] {
            let x = fe(v);
            assert_eq!(x.mul(&x.invert()), FieldElement::ONE, "v = {v}");
        }
    }

    #[test]
    fn invert_zero_is_zero() {
        assert!(FieldElement::ZERO.invert().is_zero());
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = FieldElement::sqrt_m1();
        assert_eq!(i.square(), FieldElement::ZERO.sub(&FieldElement::ONE));
    }

    #[test]
    fn sqrt_ratio_of_squares() {
        for v in [2u64, 3, 5, 9, 1234567] {
            let x = fe(v);
            let x2 = x.square();
            let r = FieldElement::sqrt_ratio(&x2, &FieldElement::ONE).expect("square has a root");
            assert!(r == x || r == x.neg(), "v = {v}");
            assert!(!r.is_negative());
        }
    }

    #[test]
    fn sqrt_ratio_nonresidue_fails() {
        // 2 is a non-residue mod p (p ≡ 5 mod 8).
        assert!(FieldElement::sqrt_ratio(&fe(2), &FieldElement::ONE).is_none());
    }

    #[test]
    fn pow_small_exponent() {
        let mut exp = [0u8; 32];
        exp[0] = 10;
        assert_eq!(fe(2).pow(&exp), fe(1024));
    }

    #[test]
    fn distributive_law_spot_check() {
        let a = fe(0x1234_5678_9abc);
        let b = fe(0xfeed_f00d);
        let c = fe(0x1111_2222_3333);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}
