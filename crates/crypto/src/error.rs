//! Error types for cryptographic operations.

/// An error from parsing or verifying cryptographic material.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CryptoError {
    /// Bytes did not decode to a valid curve point in the prime-order
    /// subgroup.
    InvalidPoint,
    /// A signature failed to parse or verify.
    InvalidSignature,
    /// A VRF proof failed to parse or verify.
    InvalidProof,
    /// A scalar encoding was non-canonical.
    InvalidScalar,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CryptoError::InvalidPoint => "invalid curve point",
            CryptoError::InvalidSignature => "invalid signature",
            CryptoError::InvalidProof => "invalid VRF proof",
            CryptoError::InvalidScalar => "non-canonical scalar",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CryptoError {}
