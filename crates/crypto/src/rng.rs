//! Deterministic pseudo-randomness for simulation and key generation.
//!
//! The repository builds hermetically — no external crates — so the
//! simulator's randomness comes from this xoshiro256++ generator, seeded
//! through SplitMix64 (the seeding procedure its authors recommend).
//! Nothing here is cryptographic: protocol randomness (sortition, seeds)
//! comes from the VRF; this module only drives the *testbed* — topology
//! draws, latency jitter, workload generation, and test vectors.

/// SplitMix64: expands a 64-bit seed into a stream of well-mixed words.
///
/// Used to initialize [`Rng`] state and useful on its own for cheap
/// one-shot mixing.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream for `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the workhorse generator.
///
/// 256 bits of state, period 2²⁵⁶−1, passes BigCrush. Deterministic from
/// its seed, which is what makes every simulation run replayable.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds from a single 64-bit value via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut mix = SplitMix64::new(seed);
        Rng {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// Seeds from 32 bytes directly (e.g. a hash).
    pub fn from_seed(seed: [u8; 32]) -> Rng {
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            u64::from_le_bytes(b)
        };
        let mut rng = Rng {
            s: [word(0), word(1), word(2), word(3)],
        };
        // An all-zero state would be a fixed point; remix through SplitMix64.
        if rng.s == [0; 4] {
            rng = Rng::seed_from_u64(0);
        }
        // A few warm-up rounds decorrelate structured seeds.
        for _ in 0..8 {
            rng.next_u64();
        }
        rng
    }

    /// The next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit word.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// 32 random bytes (keypair seeds, test vectors).
    pub fn gen_bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// A uniform `u64` in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses rejection sampling on the top bits, so the distribution is
    /// exactly uniform.
    pub fn gen_range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Largest multiple of n that fits in u64; reject above it.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` in `[0, n)`. `n` must be nonzero.
    pub fn gen_range_usize(&mut self, n: usize) -> usize {
        self.gen_range_u64(n as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_usize(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for state {1, 2, 3, 4}, from the reference
        // implementation of xoshiro256++.
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![41943041, 58720359, 3588806011781223, 3591011842654386]
        );
    }

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(99);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(99);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(100);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range_usize(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit in 1000 draws");
    }

    #[test]
    fn gen_f64_in_unit_interval_with_spread() {
        let mut rng = Rng::seed_from_u64(8);
        let mut lo = 0usize;
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                lo += 1;
            }
        }
        assert!((350..650).contains(&lo), "roughly balanced halves: {lo}");
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "order changed");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn fill_bytes_handles_ragged_lengths() {
        let mut rng = Rng::seed_from_u64(10);
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn from_seed_zero_state_is_remixed() {
        let mut rng = Rng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
