//! Randomized property tests for the cryptographic substrate.
//!
//! These check algebraic laws (field and scalar rings, group structure) and
//! end-to-end roundtrips (sign/verify, VRF prove/verify) over many random
//! inputs, complementing the fixed-vector unit tests in each module. The
//! inputs come from the in-repo deterministic RNG, so failures replay
//! exactly.

use algorand_crypto::edwards::EdwardsPoint;
use algorand_crypto::field::FieldElement;
use algorand_crypto::rng::Rng;
use algorand_crypto::scalar::Scalar;
use algorand_crypto::sha256::sha256;
use algorand_crypto::{sig, vrf, Keypair};

const CASES: usize = 24;

fn rng(test_tag: u64) -> Rng {
    Rng::seed_from_u64(0xC0FFEE ^ test_tag)
}

fn rand_field(rng: &mut Rng) -> FieldElement {
    let mut b = rng.gen_bytes32();
    b[31] &= 0x7f;
    FieldElement::from_bytes(&b)
}

fn rand_scalar(rng: &mut Rng) -> Scalar {
    Scalar::from_bytes_mod_order(&rng.gen_bytes32())
}

fn rand_keypair(rng: &mut Rng) -> Keypair {
    Keypair::from_seed(rng.gen_bytes32())
}

fn rand_msg(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range_usize(max_len + 1);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

// --- Field ring laws -------------------------------------------------------

#[test]
fn field_ring_laws() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let (a, b, c) = (
            rand_field(&mut rng),
            rand_field(&mut rng),
            rand_field(&mut rng),
        );
        assert_eq!(a.add(&b), b.add(&a), "addition commutes");
        assert_eq!(a.mul(&b), b.mul(&a), "multiplication commutes");
        assert_eq!(
            a.mul(&b).mul(&c),
            a.mul(&b.mul(&c)),
            "multiplication associates"
        );
        assert_eq!(
            a.mul(&b.add(&c)),
            a.mul(&b).add(&a.mul(&c)),
            "distributivity"
        );
        assert!(a.add(&a.neg()).is_zero(), "additive inverse");
        if !a.is_zero() {
            assert_eq!(
                a.mul(&a.invert()),
                FieldElement::ONE,
                "multiplicative inverse"
            );
        }
        assert_eq!(a.square(), a.mul(&a), "square matches mul");
    }
}

#[test]
fn field_bytes_roundtrip() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let a = rand_field(&mut rng);
        let bytes = a.to_bytes();
        assert_eq!(FieldElement::from_bytes(&bytes), a);
        // Canonical encodings keep bit 255 clear.
        assert_eq!(bytes[31] & 0x80, 0);
    }
}

#[test]
fn field_sqrt_of_square_recovers() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let a = rand_field(&mut rng);
        if a.is_zero() {
            continue;
        }
        let sq = a.square();
        let r = FieldElement::sqrt_ratio(&sq, &FieldElement::ONE).expect("is a square");
        assert!(r == a || r == a.neg());
    }
}

// --- Scalar ring laws -------------------------------------------------------

#[test]
fn scalar_ring_laws() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let (a, b, c) = (
            rand_scalar(&mut rng),
            rand_scalar(&mut rng),
            rand_scalar(&mut rng),
        );
        assert_eq!(a.add(&b), b.add(&a), "addition commutes");
        assert_eq!(
            a.mul(&b).mul(&c),
            a.mul(&b.mul(&c)),
            "multiplication associates"
        );
        assert_eq!(
            a.mul(&b.add(&c)),
            a.mul(&b).add(&a.mul(&c)),
            "distributivity"
        );
        assert_eq!(a.sub(&b), a.add(&b.neg()), "sub is add-neg");
    }
}

#[test]
fn scalar_bytes_roundtrip() {
    let mut rng = rng(5);
    for _ in 0..CASES {
        let a = rand_scalar(&mut rng);
        let parsed = Scalar::from_canonical_bytes(&a.to_bytes()).expect("canonical");
        assert_eq!(parsed, a);
    }
}

#[test]
fn scalar_wide_reduction_consistent() {
    let mut rng = rng(6);
    for _ in 0..CASES {
        let mut bytes = [0u8; 64];
        rng.fill_bytes(&mut bytes);
        // Reducing twice must be a fixed point.
        let once = Scalar::from_bytes_mod_order_wide(&bytes);
        let twice = Scalar::from_bytes_mod_order(&once.to_bytes());
        assert_eq!(once, twice);
    }
}

// --- Group laws --------------------------------------------------------------

#[test]
fn group_scalar_mul_distributes_over_scalar_add() {
    let mut rng = rng(7);
    let base = EdwardsPoint::basepoint();
    for _ in 0..CASES {
        let (a, b) = (rand_scalar(&mut rng), rand_scalar(&mut rng));
        assert_eq!(
            base.scalar_mul(&a.add(&b)),
            base.scalar_mul(&a).add(&base.scalar_mul(&b))
        );
    }
}

#[test]
fn group_point_compression_roundtrip_and_curve_membership() {
    let mut rng = rng(8);
    for _ in 0..CASES {
        let k = rand_scalar(&mut rng);
        let p = EdwardsPoint::basepoint().scalar_mul(&k);
        let c = p.compress();
        let q = EdwardsPoint::decompress(&c).expect("valid");
        assert_eq!(p, q);
        if !k.is_zero() {
            assert!(p.is_on_curve());
            assert!(p.is_torsion_free());
        }
    }
}

// --- Signatures ---------------------------------------------------------------

#[test]
fn signatures_verify_and_bind_message() {
    let mut rng = rng(9);
    for _ in 0..CASES {
        let keypair = rand_keypair(&mut rng);
        let msg = rand_msg(&mut rng, 255);
        let s = sig::sign(&keypair, &msg);
        assert!(sig::verify(&keypair.pk, &msg, &s).is_ok());
        // Roundtrip through bytes.
        let parsed = sig::Signature::from_bytes(&s.to_bytes()).unwrap();
        assert!(sig::verify(&keypair.pk, &msg, &parsed).is_ok());
        // Any single-byte flip breaks verification.
        if !msg.is_empty() {
            let mut other = msg.clone();
            other[0] ^= 1;
            assert!(sig::verify(&keypair.pk, &other, &s).is_err());
        }
    }
}

// --- VRF ------------------------------------------------------------------------

#[test]
fn vrf_prove_verify() {
    let mut rng = rng(10);
    for _ in 0..CASES {
        let keypair = rand_keypair(&mut rng);
        let alpha = rand_msg(&mut rng, 127);
        let (out, proof) = vrf::prove(&keypair, &alpha);
        let verified = vrf::verify(&keypair.pk, &alpha, &proof).unwrap();
        assert_eq!(out, verified);
        let frac = out.as_unit_fraction();
        assert!((0.0..1.0).contains(&frac));
    }
}

#[test]
fn vrf_proof_does_not_transfer() {
    let mut rng = rng(11);
    for _ in 0..CASES {
        let a = rand_keypair(&mut rng);
        let b = rand_keypair(&mut rng);
        assert_ne!(a.pk, b.pk, "distinct random keys");
        let alpha = rand_msg(&mut rng, 63);
        let (_, proof) = vrf::prove(&a, &alpha);
        assert!(vrf::verify(&b.pk, &alpha, &proof).is_err());
    }
}

// --- SHA-256 -----------------------------------------------------------------

#[test]
fn sha256_streaming_equivalence() {
    let mut rng = rng(12);
    for _ in 0..CASES {
        let data = rand_msg(&mut rng, 511);
        let split = rng.gen_range_usize(data.len() + 1);
        let mut h = algorand_crypto::sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), sha256(&data));
    }
}
