//! Property-based tests for the cryptographic substrate.
//!
//! These check algebraic laws (field and scalar rings, group structure) and
//! end-to-end roundtrips (sign/verify, VRF prove/verify) over arbitrary
//! inputs, complementing the fixed-vector unit tests in each module.

use algorand_crypto::edwards::EdwardsPoint;
use algorand_crypto::field::FieldElement;
use algorand_crypto::scalar::Scalar;
use algorand_crypto::sha256::sha256;
use algorand_crypto::{sig, vrf, Keypair};
use proptest::prelude::*;

fn arb_field_element() -> impl Strategy<Value = FieldElement> {
    any::<[u8; 32]>().prop_map(|mut b| {
        b[31] &= 0x7f;
        FieldElement::from_bytes(&b)
    })
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| Scalar::from_bytes_mod_order(&b))
}

fn arb_keypair() -> impl Strategy<Value = Keypair> {
    any::<[u8; 32]>().prop_map(Keypair::from_seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // --- Field ring laws -------------------------------------------------

    #[test]
    fn field_add_commutes(a in arb_field_element(), b in arb_field_element()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn field_mul_commutes(a in arb_field_element(), b in arb_field_element()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn field_mul_associates(
        a in arb_field_element(),
        b in arb_field_element(),
        c in arb_field_element(),
    ) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn field_distributes(
        a in arb_field_element(),
        b in arb_field_element(),
        c in arb_field_element(),
    ) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn field_additive_inverse(a in arb_field_element()) {
        prop_assert!(a.add(&a.neg()).is_zero());
    }

    #[test]
    fn field_multiplicative_inverse(a in arb_field_element()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.mul(&a.invert()), FieldElement::ONE);
    }

    #[test]
    fn field_bytes_roundtrip(a in arb_field_element()) {
        let bytes = a.to_bytes();
        prop_assert_eq!(FieldElement::from_bytes(&bytes), a);
        // Canonical encodings keep bit 255 clear.
        prop_assert_eq!(bytes[31] & 0x80, 0);
    }

    #[test]
    fn field_square_matches_mul(a in arb_field_element()) {
        prop_assert_eq!(a.square(), a.mul(&a));
    }

    #[test]
    fn field_sqrt_of_square_recovers(a in arb_field_element()) {
        prop_assume!(!a.is_zero());
        let sq = a.square();
        let r = FieldElement::sqrt_ratio(&sq, &FieldElement::ONE).expect("is a square");
        prop_assert!(r == a || r == a.neg());
    }

    // --- Scalar ring laws -------------------------------------------------

    #[test]
    fn scalar_add_commutes(a in arb_scalar(), b in arb_scalar()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn scalar_mul_associates(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn scalar_distributes(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn scalar_sub_is_add_neg(a in arb_scalar(), b in arb_scalar()) {
        prop_assert_eq!(a.sub(&b), a.add(&b.neg()));
    }

    #[test]
    fn scalar_bytes_roundtrip(a in arb_scalar()) {
        let parsed = Scalar::from_canonical_bytes(&a.to_bytes()).expect("canonical");
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn scalar_wide_reduction_consistent(bytes in any::<[u8; 64]>()) {
        // Reducing twice must be a fixed point.
        let once = Scalar::from_bytes_mod_order_wide(&bytes);
        let twice = Scalar::from_bytes_mod_order(&once.to_bytes());
        prop_assert_eq!(once, twice);
    }

    // --- Group laws --------------------------------------------------------

    #[test]
    fn group_scalar_mul_distributes_over_scalar_add(a in arb_scalar(), b in arb_scalar()) {
        let base = EdwardsPoint::basepoint();
        prop_assert_eq!(
            base.scalar_mul(&a.add(&b)),
            base.scalar_mul(&a).add(&base.scalar_mul(&b))
        );
    }

    #[test]
    fn group_point_compression_roundtrip(k in arb_scalar()) {
        let p = EdwardsPoint::basepoint().scalar_mul(&k);
        let c = p.compress();
        let q = EdwardsPoint::decompress(&c).expect("valid");
        prop_assert_eq!(p, q);
    }

    #[test]
    fn group_points_satisfy_curve_equation(k in arb_scalar()) {
        prop_assume!(!k.is_zero());
        let p = EdwardsPoint::basepoint().scalar_mul(&k);
        prop_assert!(p.is_on_curve());
        prop_assert!(p.is_torsion_free());
    }

    // --- Signatures ---------------------------------------------------------

    #[test]
    fn signatures_verify(keypair in arb_keypair(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let s = sig::sign(&keypair, &msg);
        prop_assert!(sig::verify(&keypair.pk, &msg, &s).is_ok());
        // Roundtrip through bytes.
        let parsed = sig::Signature::from_bytes(&s.to_bytes()).unwrap();
        prop_assert!(sig::verify(&keypair.pk, &msg, &parsed).is_ok());
    }

    #[test]
    fn signatures_bind_message(keypair in arb_keypair(), msg in proptest::collection::vec(any::<u8>(), 1..64)) {
        let s = sig::sign(&keypair, &msg);
        let mut other = msg.clone();
        other[0] ^= 1;
        prop_assert!(sig::verify(&keypair.pk, &other, &s).is_err());
    }

    // --- VRF ------------------------------------------------------------------

    #[test]
    fn vrf_prove_verify(keypair in arb_keypair(), alpha in proptest::collection::vec(any::<u8>(), 0..128)) {
        let (out, proof) = vrf::prove(&keypair, &alpha);
        let verified = vrf::verify(&keypair.pk, &alpha, &proof).unwrap();
        prop_assert_eq!(out, verified);
        let frac = out.as_unit_fraction();
        prop_assert!((0.0..1.0).contains(&frac));
    }

    #[test]
    fn vrf_proof_does_not_transfer(
        seed_a in any::<[u8; 32]>(),
        seed_b in any::<[u8; 32]>(),
        alpha in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(seed_a != seed_b);
        let a = Keypair::from_seed(seed_a);
        let b = Keypair::from_seed(seed_b);
        let (_, proof) = vrf::prove(&a, &alpha);
        prop_assert!(vrf::verify(&b.pk, &alpha, &proof).is_err());
    }

    // --- SHA-256 -----------------------------------------------------------

    #[test]
    fn sha256_streaming_equivalence(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = algorand_crypto::sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }
}
