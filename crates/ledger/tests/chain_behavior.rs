//! Chain-store behaviour: appends, finality, forks, bootstrap, sharding.

use algorand_ba::{BaParams, Certificate, RealVerifier, StepKind, VoteMessage, SECOND};
use algorand_crypto::Keypair;
use algorand_ledger::seed::propose_seed;
use algorand_ledger::{Block, Blockchain, ChainError, ChainParams, Transaction};
use algorand_sortition::{select, Role, SortitionParams};

const GENESIS_SEED: [u8; 32] = [3u8; 32];
const NOW: u64 = 1_000_000;
const HOUR: u64 = 3_600_000_000;

fn kp(seed: u8) -> Keypair {
    Keypair::from_seed([seed; 32])
}

fn users(n: usize) -> Vec<Keypair> {
    (0..n).map(|i| kp(i as u8 + 1)).collect()
}

fn params() -> ChainParams {
    ChainParams {
        seed_refresh_interval: 5,
        weight_lookback: 2,
        max_timestamp_skew: HOUR,
        min_balance_weights: false,
    }
}

fn new_chain(keypairs: &[Keypair]) -> Blockchain {
    Blockchain::new(
        params(),
        keypairs.iter().map(|k| (k.pk, 100u64)),
        GENESIS_SEED,
    )
}

/// Builds a valid proposed block extending the chain tip.
fn make_block(chain: &Blockchain, proposer: &Keypair, txs: Vec<Transaction>) -> Block {
    let round = chain.next_round();
    let prev = chain.tip();
    let (seed, proof) = propose_seed(proposer, &prev.seed, round);
    Block {
        round,
        prev_hash: prev.hash(),
        seed,
        seed_proof: Some(proof),
        proposer: Some(proposer.pk),
        timestamp: NOW + round,
        txs,
        payload: Vec::new(),
    }
}

/// Builds a real, valid certificate for `block` by casting step-1 votes
/// from every user (τ = W makes selection deterministic).
fn make_certificate(
    chain: &Blockchain,
    keypairs: &[Keypair],
    block: &Block,
    ba: &BaParams,
) -> Certificate {
    let round = block.round;
    let seed = chain.selection_seed(round);
    let weights = chain.weights_for_round(round);
    let step = StepKind::Main(1);
    let mut votes = Vec::new();
    for kp in keypairs {
        let sel = select(
            kp,
            &seed,
            Role::Committee {
                round,
                step: step.code(),
            },
            &SortitionParams {
                tau: ba.tau_step,
                total_weight: weights.total(),
            },
            weights.weight_of(&kp.pk),
        )
        .expect("τ = W selects everyone");
        votes.push(VoteMessage::sign(
            kp,
            round,
            step,
            sel.vrf_output,
            sel.proof,
            block.prev_hash,
            block.hash(),
        ));
    }
    Certificate {
        round,
        step,
        value: block.hash(),
        votes,
    }
}

fn ba_params(total_weight: u64) -> BaParams {
    BaParams {
        tau_step: total_weight as f64,
        t_step: 0.685,
        tau_final: total_weight as f64,
        t_final: 0.74,
        max_steps: 30,
        lambda_step: SECOND,
        lambda_block: SECOND,
        disable_backoff: false,
    }
}

#[test]
fn append_advances_tip_and_applies_txs() {
    let keypairs = users(3);
    let mut chain = new_chain(&keypairs);
    let tx = Transaction::payment(&keypairs[0], keypairs[1].pk, 25, 1);
    let tx_id = tx.id();
    let block = make_block(&chain, &keypairs[2], vec![tx]);
    chain.append(block, None, false, NOW + 1).unwrap();
    assert_eq!(chain.next_round(), 2);
    assert_eq!(chain.accounts().balance(&keypairs[0].pk), 75);
    assert_eq!(chain.accounts().balance(&keypairs[1].pk), 125);
    assert_eq!(chain.confirmed_round(&tx_id), Some(1));
    // Not yet safely confirmed: nothing final past round 0.
    assert!(!chain.is_safely_confirmed(&tx_id));
}

#[test]
fn finalize_marks_predecessors() {
    let keypairs = users(3);
    let mut chain = new_chain(&keypairs);
    let tx = Transaction::payment(&keypairs[0], keypairs[1].pk, 10, 1);
    let tx_id = tx.id();
    let b1 = make_block(&chain, &keypairs[0], vec![tx]);
    chain.append(b1, None, false, NOW + 1).unwrap();
    let b2 = make_block(&chain, &keypairs[1], vec![]);
    chain.append(b2, None, false, NOW + 2).unwrap();
    assert!(!chain.is_finalized(1));
    // Finalizing round 2 confirms round 1's transaction transitively.
    chain.finalize(2);
    assert!(chain.is_finalized(1) && chain.is_finalized(2));
    assert!(chain.is_safely_confirmed(&tx_id));
}

#[test]
fn append_rejects_non_tip_parent() {
    let keypairs = users(2);
    let mut chain = new_chain(&keypairs);
    let b1 = make_block(&chain, &keypairs[0], vec![]);
    let stale = b1.clone();
    chain.append(b1, None, false, NOW + 1).unwrap();
    // Appending a block whose parent is no longer the tip fails.
    assert_eq!(
        chain.append(stale, None, false, NOW + 2),
        Err(ChainError::UnknownParent)
    );
}

#[test]
fn empty_blocks_append_and_chain_seeds() {
    let keypairs = users(2);
    let mut chain = new_chain(&keypairs);
    for r in 1..=4u64 {
        let prev_seed = chain.tip().seed;
        let block = Block::empty(r, chain.tip_hash(), &prev_seed);
        chain.append(block, None, false, NOW + r).unwrap();
    }
    assert_eq!(chain.next_round(), 5);
    // Seeds keep changing even through empty blocks (fallback chain).
    let seeds: Vec<[u8; 32]> = (0..=4).map(|r| chain.block_at(r).unwrap().seed).collect();
    for pair in seeds.windows(2) {
        assert_ne!(pair[0], pair[1]);
    }
}

#[test]
fn selection_seed_respects_refresh_interval() {
    let keypairs = users(2);
    let mut chain = new_chain(&keypairs);
    for r in 1..=12u64 {
        let block = make_block(&chain, &keypairs[0], vec![]);
        chain.append(block, None, false, NOW + r).unwrap();
    }
    // R = 5: r − 1 − (r mod 5) maps rounds 6..=9 to the round-4 seed and
    // round 10 to the round-9 seed.
    let seed4 = chain.block_at(4).unwrap().seed;
    let seed9 = chain.block_at(9).unwrap().seed;
    assert_eq!(chain.selection_seed(6), seed4);
    assert_eq!(chain.selection_seed(9), seed4);
    assert_eq!(chain.selection_seed(10), seed9);
}

#[test]
fn longest_fork_and_switch() {
    let keypairs = users(3);
    let mut chain = new_chain(&keypairs);
    let b1 = make_block(&chain, &keypairs[0], vec![]);
    chain.append(b1.clone(), None, false, NOW + 1).unwrap();

    // Build a competing, longer fork off round 0 out-of-band.
    let mut other = new_chain(&keypairs);
    let c1 = make_block(&other, &keypairs[1], vec![]);
    other.append(c1.clone(), None, false, NOW + 1).unwrap();
    let c2 = make_block(&other, &keypairs[1], vec![]);
    other.append(c2.clone(), None, false, NOW + 2).unwrap();

    // Our node observes the foreign fork blocks passively. Observed
    // blocks were never agreed by anyone (no certificate, not canonical
    // here), so they must NOT win `longest_fork` — recovery only ever
    // extends agreed chains.
    chain.observe_block(c1.clone());
    chain.observe_block(c2.clone());
    let (tip, len) = chain.longest_fork();
    assert_eq!(len, 1);
    assert_eq!(tip, b1.hash());
    assert_eq!(chain.fork_length(&c2.hash()), None);

    // A recovery certificate can still justify switching onto an
    // observed fork: `switch_to_fork` adopts it by hash.
    chain.switch_to_fork(c2.hash(), NOW + 3).unwrap();
    assert_eq!(chain.tip_hash(), c2.hash());
    assert_eq!(chain.next_round(), 3);
    assert_eq!(chain.block_at(1).unwrap().hash(), c1.hash());
}

#[test]
fn switch_to_unknown_fork_fails() {
    let keypairs = users(2);
    let mut chain = new_chain(&keypairs);
    assert_eq!(
        chain.switch_to_fork([9u8; 32], NOW),
        Err(ChainError::UnknownFork)
    );
}

#[test]
fn fork_switch_replays_transactions() {
    let keypairs = users(3);
    let mut chain = new_chain(&keypairs);
    let tx_ours = Transaction::payment(&keypairs[0], keypairs[1].pk, 10, 1);
    let b1 = make_block(&chain, &keypairs[0], vec![tx_ours.clone()]);
    chain.append(b1, None, false, NOW + 1).unwrap();
    assert_eq!(chain.accounts().balance(&keypairs[1].pk), 110);

    // The other fork carries a different payment.
    let mut other = new_chain(&keypairs);
    let tx_theirs = Transaction::payment(&keypairs[0], keypairs[2].pk, 40, 1);
    let c1 = make_block(&other, &keypairs[1], vec![tx_theirs.clone()]);
    other.append(c1.clone(), None, false, NOW + 1).unwrap();
    let c2 = make_block(&other, &keypairs[1], vec![]);
    other.append(c2.clone(), None, false, NOW + 2).unwrap();

    chain.observe_block(c1);
    chain.observe_block(c2.clone());
    chain.switch_to_fork(c2.hash(), NOW + 3).unwrap();
    // Balances reflect the adopted fork, not the abandoned one.
    assert_eq!(chain.accounts().balance(&keypairs[1].pk), 100);
    assert_eq!(chain.accounts().balance(&keypairs[2].pk), 140);
    assert_eq!(chain.confirmed_round(&tx_ours.id()), None);
    assert_eq!(chain.confirmed_round(&tx_theirs.id()), Some(1));
}

#[test]
fn bootstrap_validates_full_history() {
    let keypairs = users(4);
    let ba = ba_params(400);
    let mut chain = new_chain(&keypairs);
    let mut history = Vec::new();
    for r in 1..=3u64 {
        let tx = Transaction::payment(&keypairs[0], keypairs[1].pk, 5, r);
        let block = make_block(&chain, &keypairs[(r % 4) as usize], vec![tx]);
        let cert = make_certificate(&chain, &keypairs, &block, &ba);
        chain
            .append(block.clone(), Some(cert.clone()), false, NOW + r)
            .unwrap();
        history.push((block, cert));
    }
    // A brand-new user validates the whole chain from genesis.
    let bootstrapped = Blockchain::bootstrap(
        params(),
        keypairs.iter().map(|k| (k.pk, 100u64)),
        GENESIS_SEED,
        &history,
        &ba,
        &RealVerifier,
        NOW + 10,
    )
    .expect("history must validate");
    assert_eq!(bootstrapped.tip_hash(), chain.tip_hash());
    assert_eq!(
        bootstrapped.accounts().balance(&keypairs[1].pk),
        chain.accounts().balance(&keypairs[1].pk)
    );
}

#[test]
fn bootstrap_rejects_forged_certificate() {
    let keypairs = users(4);
    let ba = ba_params(400);
    let chain = new_chain(&keypairs);
    let block = make_block(&chain, &keypairs[0], vec![]);
    let good = make_certificate(&chain, &keypairs, &block, &ba);

    // A certificate claiming a different block.
    let mut forged_block = block.clone();
    forged_block.timestamp += 1;
    let history = vec![(forged_block, good.clone())];
    assert_eq!(
        Blockchain::bootstrap(
            params(),
            keypairs.iter().map(|k| (k.pk, 100u64)),
            GENESIS_SEED,
            &history,
            &ba,
            &RealVerifier,
            NOW + 10,
        )
        .unwrap_err(),
        ChainError::BadCertificate
    );

    // A certificate with too few votes.
    let mut thin = good.clone();
    thin.votes.truncate(1);
    let history = vec![(block, thin)];
    assert_eq!(
        Blockchain::bootstrap(
            params(),
            keypairs.iter().map(|k| (k.pk, 100u64)),
            GENESIS_SEED,
            &history,
            &ba,
            &RealVerifier,
            NOW + 10,
        )
        .unwrap_err(),
        ChainError::BadCertificate
    );
}

#[test]
fn weights_use_lookback_state() {
    let keypairs = users(3);
    let mut chain = new_chain(&keypairs);
    // Round 1 moves all of user 0's money to user 1.
    let tx = Transaction::payment(&keypairs[0], keypairs[1].pk, 100, 1);
    let b1 = make_block(&chain, &keypairs[2], vec![tx]);
    chain.append(b1, None, false, NOW + 1).unwrap();
    for r in 2..=9u64 {
        let b = make_block(&chain, &keypairs[2], vec![]);
        chain.append(b, None, false, NOW + r).unwrap();
    }
    // With R = 5 and lookback = 2, round 9's seed round is 9-1-(9%5) = 4 and
    // its weight round is 4-2 = 2, after the transfer: user 0 has weight 0.
    let w = chain.weights_for_round(9);
    assert_eq!(w.weight_of(&keypairs[0].pk), 0);
    assert_eq!(w.weight_of(&keypairs[1].pk), 200);
    // But for an early round the weights come from genesis state.
    let w_early = chain.weights_for_round(1);
    assert_eq!(w_early.weight_of(&keypairs[0].pk), 100);
}

#[test]
fn sharded_storage_is_a_fraction_of_full() {
    let keypairs = users(4);
    let ba = ba_params(400);
    let mut chain = new_chain(&keypairs);
    for r in 1..=10u64 {
        let block = make_block(&chain, &keypairs[0], vec![]);
        let cert = make_certificate(&chain, &keypairs, &block, &ba);
        chain.append(block, Some(cert), false, NOW + r).unwrap();
    }
    let full = chain.sharded_storage_bytes(&keypairs[0].pk, 1);
    let sharded = chain.sharded_storage_bytes(&keypairs[0].pk, 5);
    assert!(full > 0);
    assert!(
        sharded * 3 < full,
        "5-way sharding should cut storage to ~1/5: {sharded} vs {full}"
    );
}

#[test]
fn min_balance_weights_remove_divested_stake() {
    // §5.3's "nothing at stake" mitigation: with min-balance weights, a
    // user who sold their look-back stake carries no voting power even
    // though the look-back snapshot still lists them.
    let keypairs = users(3);
    let mut p = params();
    p.min_balance_weights = true;
    let mut chain = Blockchain::new(p, keypairs.iter().map(|k| (k.pk, 100u64)), GENESIS_SEED);
    for r in 1..=6u64 {
        let txs = if r == 5 {
            // User 0 divests everything at round 5 — *after* the look-back
            // point for the rounds we inspect below.
            vec![Transaction::payment(&keypairs[0], keypairs[1].pk, 100, 1)]
        } else {
            vec![]
        };
        let block = make_block(&chain, &keypairs[2], txs);
        chain.append(block, None, false, NOW + r).unwrap();
    }
    // Round 7's look-back snapshot (R=5, lookback=2) predates the sale and
    // lists user 0 with 100 units — but min-balance clamps them to 0.
    let w = chain.weights_for_round(7);
    assert_eq!(
        w.weight_of(&keypairs[0].pk),
        0,
        "divested stake must not vote"
    );
    assert_eq!(
        w.weight_of(&keypairs[2].pk),
        100,
        "unmoved stake unaffected"
    );
    // Without the option the stale snapshot would still empower user 0.
    let mut plain = params();
    plain.min_balance_weights = false;
    let mut chain2 = Blockchain::new(plain, keypairs.iter().map(|k| (k.pk, 100u64)), GENESIS_SEED);
    for r in 1..=6u64 {
        let txs = if r == 5 {
            vec![Transaction::payment(&keypairs[0], keypairs[1].pk, 100, 1)]
        } else {
            vec![]
        };
        let block = make_block(&chain2, &keypairs[2], txs);
        chain2.append(block, None, false, NOW + r).unwrap();
    }
    assert_eq!(chain2.weights_for_round(7).weight_of(&keypairs[0].pk), 100);
}

#[test]
fn rollback_discards_tentative_suffix_and_salvages_txs() {
    let keypairs = users(3);
    let mut chain = new_chain(&keypairs);
    let b1 = make_block(&chain, &keypairs[0], vec![]);
    chain.append(b1, None, false, NOW + 1).unwrap();
    chain.finalize(1);
    let tx = Transaction::payment(&keypairs[0], keypairs[1].pk, 10, 1);
    let tx_id = tx.id();
    let b2 = make_block(&chain, &keypairs[1], vec![tx]);
    let b2_hash = b2.hash();
    chain.append(b2, None, false, NOW + 2).unwrap();
    assert_eq!(chain.confirmed_round(&tx_id), Some(2));

    let salvaged = chain.rollback_to(1);
    assert_eq!(chain.tip().round, 1);
    assert_eq!(salvaged.len(), 1, "dropped block's txs come back");
    assert_eq!(salvaged[0].id(), tx_id);
    assert_eq!(chain.confirmed_round(&tx_id), None);
    assert_eq!(
        chain.accounts().balance(&keypairs[0].pk),
        100,
        "account state reverts to the rollback point"
    );
    // The displaced block stays in the fork store (§8.2 bookkeeping).
    assert!(chain.block_by_hash(&b2_hash).is_some());
    // A competing round-2 block can now take the canonical slot.
    let b2b = make_block(&chain, &keypairs[2], vec![]);
    assert_ne!(b2b.hash(), b2_hash);
    chain.append(b2b, None, false, NOW + 3).unwrap();
    assert_eq!(chain.tip().round, 2);
}

#[test]
#[should_panic(expected = "finalized")]
fn rollback_refuses_to_drop_finalized_rounds() {
    let keypairs = users(3);
    let mut chain = new_chain(&keypairs);
    let b1 = make_block(&chain, &keypairs[0], vec![]);
    chain.append(b1, None, false, NOW + 1).unwrap();
    chain.finalize(1);
    chain.rollback_to(0);
}
