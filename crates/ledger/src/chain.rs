//! The blockchain store: canonical chain, forks, finality, and bootstrap.
//!
//! Each node keeps every block it learns about (§8.2 has users passively
//! track *all* forks via BA⋆ votes), an adopted canonical chain with its
//! account states, finality marks, and certificates (§8.3). Recovery
//! switches the canonical chain to the longest observed fork; bootstrap
//! rebuilds a chain from scratch by validating blocks and certificates in
//! order from genesis.

use crate::account::Accounts;
use crate::block::{Block, BlockError, Micros};
use crate::seed::selection_seed_round;
use crate::transaction::Transaction;
use algorand_ba::{BaParams, Certificate, RoundWeights, VoteVerifier};
use algorand_crypto::PublicKey;
use std::collections::HashMap;

/// Chain-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChainParams {
    /// Seed refresh interval R (§5.2; paper: 1000 rounds).
    pub seed_refresh_interval: u64,
    /// Weight look-back in rounds, standing in for the b-time look-back of
    /// §5.3 (weights are taken from the state this many rounds before the
    /// selection-seed round).
    pub weight_lookback: u64,
    /// Maximum accepted divergence between a block timestamp and the
    /// validator's clock (§8.1: "say, within an hour").
    pub max_timestamp_skew: Micros,
    /// §5.3's "nothing at stake" mitigation: weigh users by the *minimum*
    /// of their look-back and current balances, so divested money cannot
    /// vote. The paper names this option but does not deploy it; off by
    /// default here too.
    pub min_balance_weights: bool,
}

impl ChainParams {
    /// Paper-equivalent defaults: R = 1000, 1-hour skew; the weight
    /// look-back defaults to R as well (the paper ties it to b-time).
    pub fn paper() -> ChainParams {
        ChainParams {
            seed_refresh_interval: 1000,
            weight_lookback: 1000,
            max_timestamp_skew: 3_600_000_000,
            min_balance_weights: false,
        }
    }
}

/// Why a block could not be appended or a chain could not be adopted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainError {
    /// Block-level validation failed.
    Block(BlockError),
    /// The block's parent is not the current tip (append) or is unknown
    /// (observe/switch).
    UnknownParent,
    /// A certificate did not validate.
    BadCertificate,
    /// The requested fork tip is not a stored block.
    UnknownFork,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Block(e) => write!(f, "invalid block: {e}"),
            ChainError::UnknownParent => f.write_str("unknown or non-tip parent"),
            ChainError::BadCertificate => f.write_str("invalid certificate"),
            ChainError::UnknownFork => f.write_str("unknown fork tip"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<BlockError> for ChainError {
    fn from(e: BlockError) -> ChainError {
        ChainError::Block(e)
    }
}

struct Stored {
    block: Block,
    certificate: Option<Certificate>,
    finalized: bool,
}

/// One node's view of the ledger.
pub struct Blockchain {
    params: ChainParams,
    /// Every block this node knows of, canonical or not, by hash.
    all_blocks: HashMap<[u8; 32], Stored>,
    /// The adopted chain: `canonical[r]` is the hash of the round-r block.
    canonical: Vec<[u8; 32]>,
    /// `states[r]` is the account state after applying `canonical[r]`.
    states: Vec<Accounts>,
    /// Transaction id → confirming round, over the canonical chain.
    tx_index: HashMap<[u8; 32], u64>,
}

impl std::fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blockchain")
            .field("rounds", &(self.canonical.len() - 1))
            .field("known_blocks", &self.all_blocks.len())
            .field("tip", &self.tip_hash()[..4].to_vec())
            .finish()
    }
}

impl Blockchain {
    /// Creates a chain holding only the genesis block.
    ///
    /// The genesis block fixes the initial allocations and the bootstrap
    /// seed `seed_0` (§8.3: chosen by distributed random generation once
    /// the initial keys are public — here it is simply an input).
    pub fn new(
        params: ChainParams,
        alloc: impl IntoIterator<Item = (PublicKey, u64)>,
        genesis_seed: [u8; 32],
    ) -> Blockchain {
        let accounts = Accounts::genesis(alloc);
        let genesis = Block {
            round: 0,
            prev_hash: [0u8; 32],
            seed: genesis_seed,
            seed_proof: None,
            proposer: None,
            timestamp: 0,
            txs: Vec::new(),
            payload: Vec::new(),
        };
        let ghash = genesis.hash();
        let mut all_blocks = HashMap::new();
        all_blocks.insert(
            ghash,
            Stored {
                block: genesis,
                certificate: None,
                finalized: true,
            },
        );
        Blockchain {
            params,
            all_blocks,
            canonical: vec![ghash],
            states: vec![accounts],
            tx_index: HashMap::new(),
        }
    }

    /// The chain parameters.
    pub fn params(&self) -> &ChainParams {
        &self.params
    }

    /// The current tip block.
    pub fn tip(&self) -> &Block {
        let h = self.canonical.last().expect("genesis always present");
        &self.all_blocks[h].block
    }

    /// The hash of the tip block.
    pub fn tip_hash(&self) -> [u8; 32] {
        *self.canonical.last().expect("genesis always present")
    }

    /// The round the chain is currently trying to agree on (tip + 1).
    pub fn next_round(&self) -> u64 {
        self.tip().round + 1
    }

    /// Account state at the tip.
    pub fn accounts(&self) -> &Accounts {
        self.states.last().expect("genesis always present")
    }

    /// The canonical block for a round, if adopted.
    pub fn block_at(&self, round: u64) -> Option<&Block> {
        self.canonical
            .get(round as usize)
            .map(|h| &self.all_blocks[h].block)
    }

    /// The certificate stored for a canonical round.
    pub fn certificate_at(&self, round: u64) -> Option<&Certificate> {
        self.canonical
            .get(round as usize)
            .and_then(|h| self.all_blocks[h].certificate.as_ref())
    }

    /// A digest of the canonical chain through `round`: the hash of the
    /// concatenated block hashes for rounds `1..=round`. Two deployments
    /// that agreed on the same blocks — a simulator run and a real
    /// multi-process network — produce identical digests. `None` if the
    /// chain has not reached `round` yet.
    pub fn digest_through(&self, round: u64) -> Option<[u8; 32]> {
        if self.tip().round < round {
            return None;
        }
        let mut acc: Vec<u8> = Vec::with_capacity(32 * round as usize);
        for r in 1..=round {
            acc.extend_from_slice(self.canonical.get(r as usize)?);
        }
        Some(algorand_crypto::sha256_concat(&[
            b"chain-digest-through",
            &acc,
        ]))
    }

    /// Whether the canonical block at `round` is finalized.
    pub fn is_finalized(&self, round: u64) -> bool {
        self.canonical
            .get(round as usize)
            .map(|h| self.all_blocks[h].finalized)
            .unwrap_or(false)
    }

    /// The sortition seed to use for `round` (§5.2's refresh rule).
    pub fn selection_seed(&self, round: u64) -> [u8; 32] {
        let seed_round = selection_seed_round(round, self.params.seed_refresh_interval);
        self.block_at(seed_round.min(self.tip().round))
            .expect("seed round is on the canonical chain")
            .seed
    }

    /// The weight snapshot to use for `round` (§5.3's look-back rule).
    ///
    /// With [`ChainParams::min_balance_weights`] set, the look-back weights
    /// are clamped by current balances (§5.3's "nothing at stake"
    /// mitigation).
    pub fn weights_for_round(&self, round: u64) -> RoundWeights {
        let seed_round = selection_seed_round(round, self.params.seed_refresh_interval);
        let weight_round = seed_round
            .saturating_sub(self.params.weight_lookback)
            .min(self.tip().round);
        let lookback = self.states[weight_round as usize].weights();
        if self.params.min_balance_weights {
            lookback.min_with(&self.accounts().weights())
        } else {
            lookback
        }
    }

    /// Appends a block to the canonical chain after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownParent`] if the block does not extend
    /// the tip, or the underlying [`BlockError`].
    pub fn append(
        &mut self,
        block: Block,
        certificate: Option<Certificate>,
        finalized: bool,
        now: Micros,
    ) -> Result<(), ChainError> {
        if block.prev_hash != self.tip_hash() {
            return Err(ChainError::UnknownParent);
        }
        block.validate(
            self.tip(),
            self.accounts(),
            now,
            self.params.max_timestamp_skew,
        )?;
        let mut state = self.accounts().clone();
        for tx in &block.txs {
            state
                .apply(tx)
                .expect("validate() already checked every transaction");
            self.tx_index.insert(tx.id(), block.round);
        }
        let hash = block.hash();
        self.all_blocks.insert(
            hash,
            Stored {
                block,
                certificate,
                finalized,
            },
        );
        self.canonical.push(hash);
        self.states.push(state);
        Ok(())
    }

    /// Marks the canonical block at `round` (and, transitively, all its
    /// predecessors) as finalized. Algorand confirms a transaction when it
    /// is in a final block *or a predecessor of one* (§8.2).
    pub fn finalize(&mut self, round: u64) {
        for r in 0..=round.min(self.tip().round) {
            let h = self.canonical[r as usize];
            self.all_blocks.get_mut(&h).expect("canonical").finalized = true;
        }
    }

    /// Discards the tentative canonical suffix above `round`, returning the
    /// transactions of the dropped blocks so the caller can salvage them
    /// back into its pool.
    ///
    /// A tentative prefix may sit on the losing side of a §8.2 fork: a
    /// partition can leave a minority holding tentatively-certified blocks
    /// the rest of the network never adopted. Catch-up resolves this by
    /// rolling the tentative suffix back and re-appending the majority's
    /// certified chain. Finalized rounds can never fork, so the caller must
    /// keep `round` at or above the finalized prefix; rolled-back rounds
    /// are asserted tentative. The dropped blocks stay in the fork store
    /// for §8.2 bookkeeping.
    pub fn rollback_to(&mut self, round: u64) -> Vec<Transaction> {
        let tip = self.tip().round;
        debug_assert!(round <= tip);
        let mut dropped = Vec::new();
        for r in round + 1..=tip {
            let h = self.canonical[r as usize];
            let stored = &self.all_blocks[&h];
            assert!(!stored.finalized, "cannot roll back a finalized round");
            for tx in &stored.block.txs {
                self.tx_index.remove(&tx.id());
                dropped.push(tx.clone());
            }
        }
        self.canonical.truncate(round as usize + 1);
        self.states.truncate(round as usize + 1);
        dropped
    }

    /// Drops non-canonical blocks at or below `round` from the fork store.
    ///
    /// Finalized rounds can never fork (§8.2), so side blocks there are
    /// dead weight; nodes prune them as finality advances to keep memory
    /// proportional to the unfinalized suffix.
    pub fn prune_side_blocks(&mut self, round: u64) {
        let canonical: std::collections::HashSet<[u8; 32]> =
            self.canonical.iter().copied().collect();
        self.all_blocks
            .retain(|h, s| s.block.round > round || canonical.contains(h));
    }

    /// Stores a block that is *not* (yet) on the canonical chain — fork
    /// tracking for recovery (§8.2).
    pub fn observe_block(&mut self, block: Block) {
        let hash = block.hash();
        self.all_blocks.entry(hash).or_insert(Stored {
            block,
            certificate: None,
            finalized: false,
        });
    }

    /// The round a transaction was confirmed in, if on the canonical chain.
    pub fn confirmed_round(&self, tx_id: &[u8; 32]) -> Option<u64> {
        self.tx_index.get(tx_id).copied()
    }

    /// A confirmed transaction is *safely* confirmed once its block or any
    /// successor is final.
    pub fn is_safely_confirmed(&self, tx_id: &[u8; 32]) -> bool {
        match self.confirmed_round(tx_id) {
            Some(round) => (round..=self.tip().round).any(|r| self.is_finalized(r)),
            None => false,
        }
    }

    /// The tip of the longest *agreed* chain among all stored blocks
    /// whose ancestry reaches genesis — the fork proposed during recovery
    /// (§8.2).
    ///
    /// Only agreed blocks count (certified, or on the local canonical
    /// chain): a merely observed block cannot have been tentatively
    /// agreed by anyone (a BA⋆ decision implies a certificate), so
    /// nothing is lost by never extending it — and observed
    /// proposal-race bodies are *local* state that peers on the other
    /// side of a partition may not hold, so a recovery proposal
    /// extending one could never gather network-wide votes.
    pub fn longest_fork(&self) -> ([u8; 32], u64) {
        let mut best = (self.canonical[0], 0u64);
        for hash in self.all_blocks.keys() {
            if let Some(len) = self.certified_depth_of(hash) {
                if len > best.1 || (len == best.1 && *hash > best.0) {
                    best = (*hash, len);
                }
            }
        }
        best
    }

    /// A stored block (canonical or not) by hash.
    pub fn block_by_hash(&self, hash: &[u8; 32]) -> Option<&Block> {
        self.all_blocks.get(hash).map(|s| &s.block)
    }

    /// The length (number of non-genesis ancestors) of the *agreed*
    /// chain ending at `hash`, or `None` if any ancestor is missing or
    /// was merely observed. This is the yardstick recovery proposals are
    /// judged by, so it must match what [`Blockchain::longest_fork`]
    /// measures.
    pub fn fork_length(&self, hash: &[u8; 32]) -> Option<u64> {
        self.certified_depth_of(hash)
    }

    /// The weight snapshot at a specific canonical round (clamped to the
    /// tip). Used by recovery, which fixes its own look-back round.
    pub fn weights_at_round(&self, round: u64) -> RoundWeights {
        let r = round.min(self.tip().round) as usize;
        self.states[r].weights()
    }

    /// The newest canonical *proposed* block whose timestamp is at most
    /// `cutoff`, falling back to genesis: the shared reference point from
    /// which recovery derives its seed and weights (§8.2 quantizes time by
    /// block timestamps so nodes on different forks agree on it as long as
    /// the fork is younger than the look-back window).
    pub fn recovery_base(&self, cutoff: Micros) -> (u64, [u8; 32]) {
        let mut base = (0u64, self.all_blocks[&self.canonical[0]].block.seed);
        for (r, h) in self.canonical.iter().enumerate() {
            let b = &self.all_blocks[h].block;
            if b.timestamp > 0 && b.timestamp <= cutoff {
                base = (r as u64, b.seed);
            }
        }
        base
    }

    /// The number of ancestors of `hash` down to genesis, or `None` if the
    /// ancestry is incomplete (missing blocks) or contains a non-genesis
    /// block that was merely observed, never agreed: a block counts only
    /// when it carries a certificate or sits on this node's canonical
    /// chain (which the node only extends through agreed rounds).
    fn certified_depth_of(&self, hash: &[u8; 32]) -> Option<u64> {
        let mut depth = 0u64;
        let mut cur = *hash;
        loop {
            let stored = self.all_blocks.get(&cur)?;
            if stored.block.round == 0 {
                return Some(depth);
            }
            let canonical = self.canonical.get(stored.block.round as usize) == Some(&cur);
            if stored.certificate.is_none() && !canonical {
                return None;
            }
            cur = stored.block.prev_hash;
            depth += 1;
            if depth > self.all_blocks.len() as u64 {
                return None; // Cycle guard; cannot happen with real hashes.
            }
        }
    }

    /// Re-roots the canonical chain at the fork ending in `tip`.
    ///
    /// Used by recovery once BA⋆ agrees which fork to adopt. Account
    /// states and the transaction index are rebuilt by replaying the fork
    /// from genesis.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownFork`] if any ancestor is missing, or a
    /// validation error if the fork contains an invalid block (an honest
    /// node never proposes such a fork).
    pub fn switch_to_fork(&mut self, tip: [u8; 32], now: Micros) -> Result<(), ChainError> {
        // Collect the fork from tip to genesis.
        let mut path = Vec::new();
        let mut cur = tip;
        loop {
            let stored = self.all_blocks.get(&cur).ok_or(ChainError::UnknownFork)?;
            path.push(cur);
            if stored.block.round == 0 {
                break;
            }
            cur = stored.block.prev_hash;
        }
        path.reverse();
        if path[0] != self.canonical[0] {
            return Err(ChainError::UnknownFork);
        }
        // Replay states along the fork.
        let mut states = vec![self.states[0].clone()];
        let mut tx_index = HashMap::new();
        for pair in path.windows(2) {
            let prev = &self.all_blocks[&pair[0]].block;
            let block = &self.all_blocks[&pair[1]].block;
            let state = states.last().expect("nonempty");
            block.validate(prev, state, now, self.params.max_timestamp_skew)?;
            let mut next = state.clone();
            for tx in &block.txs {
                next.apply(tx).expect("validated");
                tx_index.insert(tx.id(), block.round);
            }
            states.push(next);
        }
        self.canonical = path;
        self.states = states;
        self.tx_index = tx_index;
        Ok(())
    }

    /// Bootstraps a chain by validating `(block, certificate)` pairs in
    /// order from genesis (§8.3's catch-up).
    ///
    /// Every certificate is checked with the seed and weights that were in
    /// effect for its round, exactly as a live participant would have.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BadCertificate`] on any forged or insufficient
    /// certificate, or the block validation error.
    #[allow(clippy::too_many_arguments)]
    pub fn bootstrap(
        params: ChainParams,
        alloc: impl IntoIterator<Item = (PublicKey, u64)>,
        genesis_seed: [u8; 32],
        history: &[(Block, Certificate)],
        ba_params: &BaParams,
        verifier: &dyn VoteVerifier,
        now: Micros,
    ) -> Result<Blockchain, ChainError> {
        let mut chain = Blockchain::new(params, alloc, genesis_seed);
        for (block, cert) in history {
            if cert.round != block.round || cert.value != block.hash() {
                return Err(ChainError::BadCertificate);
            }
            let seed = chain.selection_seed(block.round);
            let weights = chain.weights_for_round(block.round);
            let prev_hash = chain.tip_hash();
            cert.validate(ba_params, &seed, &prev_hash, &weights, verifier)
                .map_err(|_| ChainError::BadCertificate)?;
            chain.append(block.clone(), Some(cert.clone()), false, now)?;
        }
        Ok(chain)
    }

    /// Total bytes this node stores for blocks and certificates when the
    /// store is sharded `n_shards` ways (§8.3): a user with key `pk` keeps
    /// rounds where `round ≡ pk mod n_shards`.
    pub fn sharded_storage_bytes(&self, pk: &PublicKey, n_shards: u64) -> usize {
        let shard = shard_of(pk, n_shards);
        self.canonical
            .iter()
            .enumerate()
            .filter(|(r, _)| n_shards <= 1 || (*r as u64) % n_shards == shard)
            .map(|(_, h)| {
                let stored = &self.all_blocks[h];
                stored.block.wire_size() + stored.certificate.as_ref().map_or(0, |c| c.wire_size())
            })
            .sum()
    }
}

/// The storage shard a public key is responsible for (§8.3: "users store
/// blocks/certificates whose round number equals their public key modulo
/// N").
pub fn shard_of(pk: &PublicKey, n_shards: u64) -> u64 {
    if n_shards <= 1 {
        return 0;
    }
    let bytes = pk.as_bytes();
    let mut x = [0u8; 8];
    x.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(x) % n_shards
}
