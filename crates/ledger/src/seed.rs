//! The sortition seed chain (§5.2–§5.3).
//!
//! Every round publishes a new seed. A block proposer computes
//! `⟨seed_r, π⟩ ← VRF_sk(seed_{r−1} ‖ r)`, which is pseudorandom even for a
//! malicious proposer because the key was fixed before the prior seed was
//! known. If a round's block is empty or carries an invalid seed, everyone
//! falls back to `seed_r = H(seed_{r−1} ‖ r)`. Sortition at round `r` uses
//! the seed published at round `r − 1 − (r mod R)` — the refresh interval R
//! limits how often an adversary can grind on seed selection.

use algorand_crypto::vrf::{self, VrfProof};
use algorand_crypto::{sha256_concat, Keypair, PublicKey};

const DOM_SEED: &[u8] = b"algorand-repro/seed/v1";

/// Builds the VRF input `seed_{r-1} || r`.
fn seed_alpha(prev_seed: &[u8; 32], round: u64) -> Vec<u8> {
    let mut alpha = Vec::with_capacity(DOM_SEED.len() + 40);
    alpha.extend_from_slice(DOM_SEED);
    alpha.extend_from_slice(prev_seed);
    alpha.extend_from_slice(&round.to_le_bytes());
    alpha
}

/// Computes the proposer's seed for `round` from the previous round's seed.
///
/// Returns the new seed and the proof that goes into the proposed block.
pub fn propose_seed(keypair: &Keypair, prev_seed: &[u8; 32], round: u64) -> ([u8; 32], VrfProof) {
    let (output, proof) = vrf::prove(keypair, &seed_alpha(prev_seed, round));
    (output.0, proof)
}

/// Verifies a proposed seed; returns the certified seed on success.
///
/// A block whose seed fails this check is treated as empty (§5.2).
pub fn verify_seed_proposal(
    pk: &PublicKey,
    proof: &VrfProof,
    prev_seed: &[u8; 32],
    round: u64,
) -> Option<[u8; 32]> {
    vrf::verify(pk, &seed_alpha(prev_seed, round), proof)
        .ok()
        .map(|o| o.0)
}

/// The hash-chain fallback seed `H(seed_{r−1} ‖ r)` used for empty blocks.
pub fn fallback_seed(prev_seed: &[u8; 32], round: u64) -> [u8; 32] {
    sha256_concat(&[DOM_SEED, b"/fallback", prev_seed, &round.to_le_bytes()])
}

/// The round whose published seed drives sortition at `round`:
/// `r − 1 − (r mod R)` (§5.2), saturating at the genesis seed.
pub fn selection_seed_round(round: u64, refresh_interval: u64) -> u64 {
    debug_assert!(refresh_interval > 0);
    round.saturating_sub(1 + round % refresh_interval.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_seed_verifies_and_is_deterministic() {
        let kp = Keypair::from_seed([1; 32]);
        let prev = [7u8; 32];
        let (s1, p1) = propose_seed(&kp, &prev, 10);
        let (s2, _) = propose_seed(&kp, &prev, 10);
        assert_eq!(s1, s2);
        assert_eq!(verify_seed_proposal(&kp.pk, &p1, &prev, 10), Some(s1));
    }

    #[test]
    fn seed_proposal_bound_to_round_and_prev() {
        let kp = Keypair::from_seed([2; 32]);
        let prev = [7u8; 32];
        let (_, proof) = propose_seed(&kp, &prev, 10);
        assert!(verify_seed_proposal(&kp.pk, &proof, &prev, 11).is_none());
        assert!(verify_seed_proposal(&kp.pk, &proof, &[8u8; 32], 10).is_none());
        let other = Keypair::from_seed([3; 32]);
        assert!(verify_seed_proposal(&other.pk, &proof, &prev, 10).is_none());
    }

    #[test]
    fn proposer_cannot_choose_their_seed() {
        // The VRF is deterministic per key: a proposer gets exactly one
        // candidate seed per round, not a menu. Different keys give
        // different seeds (grinding requires buying stake, not hashing).
        let prev = [9u8; 32];
        let s_a = propose_seed(&Keypair::from_seed([4; 32]), &prev, 5).0;
        let s_b = propose_seed(&Keypair::from_seed([5; 32]), &prev, 5).0;
        assert_ne!(s_a, s_b);
    }

    #[test]
    fn fallback_seed_chains() {
        let prev = [1u8; 32];
        let s10 = fallback_seed(&prev, 10);
        let s11 = fallback_seed(&s10, 11);
        assert_ne!(s10, s11);
        assert_ne!(s10, prev);
        // Deterministic.
        assert_eq!(fallback_seed(&prev, 10), s10);
    }

    #[test]
    fn fallback_differs_from_vrf_seed() {
        let kp = Keypair::from_seed([6; 32]);
        let prev = [2u8; 32];
        assert_ne!(propose_seed(&kp, &prev, 3).0, fallback_seed(&prev, 3));
    }

    #[test]
    fn selection_round_follows_refresh_interval() {
        // R = 10: rounds 11..=20 all use the seed from round 10... wait:
        // r=11 → 11-1-(11%10)=9; r=19 → 19-1-9=9; r=20 → 20-1-0=19.
        assert_eq!(selection_seed_round(11, 10), 9);
        assert_eq!(selection_seed_round(19, 10), 9);
        assert_eq!(selection_seed_round(20, 10), 19);
        assert_eq!(selection_seed_round(29, 10), 19);
        // R = 1: always the previous round's seed.
        assert_eq!(selection_seed_round(5, 1), 4);
        // Early rounds saturate at the genesis seed.
        assert_eq!(selection_seed_round(1, 10), 0);
        assert_eq!(selection_seed_round(0, 10), 0);
    }
}
