//! Blocks and block validation (§8.1).
//!
//! A block carries "a list of transactions, along with metadata needed by
//! BA⋆": the round number, the proposer's VRF-based seed, the previous
//! block's hash, and the proposal timestamp. Every user validates a
//! received block before handing its hash to BA⋆; an invalid block is
//! replaced by the round's *empty block*, which every user can construct
//! locally and identically.

use crate::codec::{DecodeError, Reader, WriteExt};
use crate::seed::{fallback_seed, verify_seed_proposal};
use crate::transaction::Transaction;
use crate::Accounts;
use algorand_crypto::vrf::{VrfProof, VRF_PROOF_LEN};
use algorand_crypto::{sha256, PublicKey};

/// Microseconds, matching the BA⋆ clock.
pub type Micros = u64;

/// Why a proposed block failed validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockError {
    /// The round number does not follow the previous block.
    BadRound,
    /// The previous-block hash does not match.
    BadPrevHash,
    /// The timestamp is not after the previous block's, or is too far from
    /// the validator's clock.
    BadTimestamp,
    /// The seed or its VRF proof is invalid.
    BadSeed,
    /// A transaction failed validation.
    BadTransaction,
    /// A non-empty block is missing its proposer or seed proof.
    MissingProposer,
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BlockError::BadRound => "wrong round number",
            BlockError::BadPrevHash => "previous-block hash mismatch",
            BlockError::BadTimestamp => "timestamp out of range",
            BlockError::BadSeed => "invalid seed or seed proof",
            BlockError::BadTransaction => "invalid transaction",
            BlockError::MissingProposer => "missing proposer or seed proof",
        };
        f.write_str(s)
    }
}

impl std::error::Error for BlockError {}

/// One block of the Algorand ledger.
#[derive(Clone, Debug)]
pub struct Block {
    /// The round this block was agreed in.
    pub round: u64,
    /// Hash of the previous block.
    pub prev_hash: [u8; 32],
    /// The seed published for future sortition (§5.2).
    pub seed: [u8; 32],
    /// VRF proof for the seed; `None` in empty (fallback) blocks.
    pub seed_proof: Option<VrfProof>,
    /// The proposer's public key; `None` in empty blocks.
    pub proposer: Option<PublicKey>,
    /// When the proposer created the block (0 in empty blocks).
    pub timestamp: Micros,
    /// The payments carried by this block.
    pub txs: Vec<Transaction>,
    /// Synthetic payload standing in for additional transaction bytes.
    ///
    /// The paper's throughput experiments fill 1–10 MB blocks; carrying
    /// that as typed transactions would add nothing but per-test signing
    /// cost, so experiments pad blocks here. Real deployments leave it
    /// empty. It is covered by the block hash like everything else.
    pub payload: Vec<u8>,
}

/// Upper bound on transactions per block accepted by the decoder.
const MAX_TXS: usize = 1 << 20;
/// Upper bound on payload bytes accepted by the decoder (16 MiB).
const MAX_PAYLOAD: usize = 16 << 20;

impl Block {
    /// Constructs the round's canonical empty block (`Empty(round,
    /// H(last_block))` of Algorithm 7).
    ///
    /// Deterministic in `(round, prev_hash, prev_seed)`: every user builds
    /// bit-identical empty blocks without communicating.
    pub fn empty(round: u64, prev_hash: [u8; 32], prev_seed: &[u8; 32]) -> Block {
        Block {
            round,
            prev_hash,
            seed: fallback_seed(prev_seed, round),
            seed_proof: None,
            proposer: None,
            timestamp: 0,
            txs: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// True if this is an empty (fallback) block.
    pub fn is_empty_block(&self) -> bool {
        self.proposer.is_none()
    }

    /// The block hash: SHA-256 of the canonical encoding.
    pub fn hash(&self) -> [u8; 32] {
        sha256(&self.encoded())
    }

    /// Appends the canonical encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64(self.round);
        out.put_bytes(&self.prev_hash);
        out.put_bytes(&self.seed);
        match &self.seed_proof {
            Some(p) => {
                out.put_u8(1);
                out.put_bytes(&p.to_bytes());
            }
            None => out.put_u8(0),
        }
        match &self.proposer {
            Some(pk) => {
                out.put_u8(1);
                out.put_bytes(pk.as_bytes());
            }
            None => out.put_u8(0),
        }
        out.put_u64(self.timestamp);
        out.put_u32(self.txs.len() as u32);
        for tx in &self.txs {
            tx.encode(out);
        }
        out.put_var_bytes(&self.payload);
    }

    /// The canonical encoding as a fresh buffer.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.encode(&mut out);
        out
    }

    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + 32
            + 32
            + 1
            + self.seed_proof.as_ref().map_or(0, |_| VRF_PROOF_LEN)
            + 1
            + self.proposer.as_ref().map_or(0, |_| 32)
            + 8
            + 4
            + self.txs.len() * Transaction::WIRE_SIZE
            + 4
            + self.payload.len()
    }

    /// Decodes a block.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input; semantic validity is
    /// checked separately by [`Block::validate`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Block, DecodeError> {
        let round = r.u64()?;
        let prev_hash = r.bytes32()?;
        let seed = r.bytes32()?;
        let seed_proof = match r.u8()? {
            0 => None,
            1 => {
                let mut b = [0u8; VRF_PROOF_LEN];
                b.copy_from_slice(r.bytes(VRF_PROOF_LEN)?);
                Some(VrfProof::from_bytes(&b).map_err(|_| DecodeError::Invalid)?)
            }
            _ => return Err(DecodeError::Invalid),
        };
        let proposer = match r.u8()? {
            0 => None,
            1 => Some(PublicKey::from_bytes(&r.bytes32()?).map_err(|_| DecodeError::Invalid)?),
            _ => return Err(DecodeError::Invalid),
        };
        let timestamp = r.u64()?;
        let n_txs = r.u32()? as usize;
        if n_txs > MAX_TXS {
            return Err(DecodeError::Invalid);
        }
        let mut txs = Vec::with_capacity(n_txs.min(1024));
        for _ in 0..n_txs {
            txs.push(Transaction::decode(r)?);
        }
        let payload = r.var_bytes(MAX_PAYLOAD)?.to_vec();
        Ok(Block {
            round,
            prev_hash,
            seed,
            seed_proof,
            proposer,
            timestamp,
            txs,
            payload,
        })
    }

    /// Validates a received block against its predecessor (§8.1).
    ///
    /// `accounts` is the state after the previous block; `now` is the
    /// validator's clock and `max_skew` the accepted timestamp divergence
    /// ("approximately current, say within an hour"). On any failure the
    /// caller must hand the *empty* block to BA⋆ instead.
    ///
    /// # Errors
    ///
    /// Returns the first [`BlockError`] found.
    pub fn validate(
        &self,
        prev: &Block,
        accounts: &Accounts,
        now: Micros,
        max_skew: Micros,
    ) -> Result<(), BlockError> {
        if self.round != prev.round + 1 {
            return Err(BlockError::BadRound);
        }
        if self.prev_hash != prev.hash() {
            return Err(BlockError::BadPrevHash);
        }
        if self.is_empty_block() {
            // An empty block must be *the* canonical empty block.
            let canonical = Block::empty(self.round, self.prev_hash, &prev.seed);
            if self.hash() != canonical.hash() {
                return Err(BlockError::BadSeed);
            }
            return Ok(());
        }
        let (Some(proposer), Some(seed_proof)) = (&self.proposer, &self.seed_proof) else {
            return Err(BlockError::MissingProposer);
        };
        if self.timestamp <= prev.timestamp && prev.timestamp != 0 {
            return Err(BlockError::BadTimestamp);
        }
        if self.timestamp > now + max_skew || self.timestamp + max_skew < now {
            return Err(BlockError::BadTimestamp);
        }
        match verify_seed_proposal(proposer, seed_proof, &prev.seed, self.round) {
            Some(seed) if seed == self.seed => {}
            _ => return Err(BlockError::BadSeed),
        }
        let mut state = accounts.clone();
        for tx in &self.txs {
            state.apply(tx).map_err(|_| BlockError::BadTransaction)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::propose_seed;
    use algorand_crypto::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    fn genesis() -> Block {
        Block::empty(0, [0u8; 32], &[0u8; 32])
    }

    fn proposed_block(proposer: &Keypair, prev: &Block, txs: Vec<Transaction>) -> Block {
        let round = prev.round + 1;
        let (seed, proof) = propose_seed(proposer, &prev.seed, round);
        Block {
            round,
            prev_hash: prev.hash(),
            seed,
            seed_proof: Some(proof),
            proposer: Some(proposer.pk),
            timestamp: 1_000_000,
            txs,
            payload: Vec::new(),
        }
    }

    #[test]
    fn empty_block_is_deterministic() {
        let g = genesis();
        let a = Block::empty(1, g.hash(), &g.seed);
        let b = Block::empty(1, g.hash(), &g.seed);
        assert_eq!(a.hash(), b.hash());
        assert!(a.is_empty_block());
        // Different rounds or parents give different empty blocks.
        assert_ne!(a.hash(), Block::empty(2, g.hash(), &g.seed).hash());
        assert_ne!(a.hash(), Block::empty(1, [1u8; 32], &g.seed).hash());
    }

    #[test]
    fn valid_proposed_block_passes() {
        let alice = kp(1);
        let bob = kp(2);
        let accounts = Accounts::genesis([(alice.pk, 100), (bob.pk, 50)]);
        let g = genesis();
        let tx = Transaction::payment(&alice, bob.pk, 10, 1);
        let block = proposed_block(&alice, &g, vec![tx]);
        block
            .validate(&g, &accounts, 1_000_000, 3_600_000_000)
            .unwrap();
    }

    #[test]
    fn wrong_round_rejected() {
        let alice = kp(1);
        let accounts = Accounts::genesis([(alice.pk, 100)]);
        let g = genesis();
        let mut block = proposed_block(&alice, &g, vec![]);
        block.round = 5;
        assert_eq!(
            block.validate(&g, &accounts, 1_000_000, 3_600_000_000),
            Err(BlockError::BadRound)
        );
    }

    #[test]
    fn wrong_prev_hash_rejected() {
        let alice = kp(1);
        let accounts = Accounts::genesis([(alice.pk, 100)]);
        let g = genesis();
        let mut block = proposed_block(&alice, &g, vec![]);
        block.prev_hash = [9u8; 32];
        assert_eq!(
            block.validate(&g, &accounts, 1_000_000, 3_600_000_000),
            Err(BlockError::BadPrevHash)
        );
    }

    #[test]
    fn stolen_seed_rejected() {
        // A proposer cannot reuse another user's seed proof.
        let alice = kp(1);
        let mallory = kp(3);
        let accounts = Accounts::genesis([(alice.pk, 100), (mallory.pk, 100)]);
        let g = genesis();
        let honest = proposed_block(&alice, &g, vec![]);
        let mut stolen = honest.clone();
        stolen.proposer = Some(mallory.pk);
        assert_eq!(
            stolen.validate(&g, &accounts, 1_000_000, 3_600_000_000),
            Err(BlockError::BadSeed)
        );
    }

    #[test]
    fn fabricated_seed_rejected() {
        let alice = kp(1);
        let accounts = Accounts::genesis([(alice.pk, 100)]);
        let g = genesis();
        let mut block = proposed_block(&alice, &g, vec![]);
        block.seed = [0x42u8; 32];
        assert_eq!(
            block.validate(&g, &accounts, 1_000_000, 3_600_000_000),
            Err(BlockError::BadSeed)
        );
    }

    #[test]
    fn far_future_timestamp_rejected() {
        let alice = kp(1);
        let accounts = Accounts::genesis([(alice.pk, 100)]);
        let g = genesis();
        let mut block = proposed_block(&alice, &g, vec![]);
        block.timestamp = 10_000_000_000_000;
        // Timestamp is signed into nothing (blocks are identified by hash),
        // so only validation catches it.
        assert_eq!(
            block.validate(&g, &accounts, 1_000_000, 3_600_000_000),
            Err(BlockError::BadTimestamp)
        );
    }

    #[test]
    fn invalid_transaction_rejects_block() {
        let alice = kp(1);
        let bob = kp(2);
        let accounts = Accounts::genesis([(alice.pk, 5)]);
        let g = genesis();
        // Overdraft.
        let tx = Transaction::payment(&alice, bob.pk, 100, 1);
        let block = proposed_block(&alice, &g, vec![tx]);
        assert_eq!(
            block.validate(&g, &accounts, 1_000_000, 3_600_000_000),
            Err(BlockError::BadTransaction)
        );
    }

    #[test]
    fn sequential_txs_in_one_block_validate() {
        let alice = kp(1);
        let bob = kp(2);
        let accounts = Accounts::genesis([(alice.pk, 100)]);
        let g = genesis();
        let t1 = Transaction::payment(&alice, bob.pk, 60, 1);
        let t2 = Transaction::payment(&alice, bob.pk, 40, 2);
        let block = proposed_block(&alice, &g, vec![t1, t2]);
        block
            .validate(&g, &accounts, 1_000_000, 3_600_000_000)
            .unwrap();
    }

    #[test]
    fn encoding_roundtrip() {
        let alice = kp(1);
        let bob = kp(2);
        let g = genesis();
        let tx = Transaction::payment(&alice, bob.pk, 10, 1);
        let mut block = proposed_block(&alice, &g, vec![tx]);
        block.payload = vec![0xaa; 100];
        let bytes = block.encoded();
        assert_eq!(bytes.len(), block.wire_size());
        let mut r = Reader::new(&bytes);
        let back = Block::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.hash(), block.hash());
        assert_eq!(back.txs.len(), 1);
        assert_eq!(back.payload.len(), 100);
    }

    #[test]
    fn empty_block_encoding_roundtrip() {
        let g = genesis();
        let bytes = g.encoded();
        let mut r = Reader::new(&bytes);
        let back = Block::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.hash(), g.hash());
        assert!(back.is_empty_block());
    }

    #[test]
    fn counterfeit_empty_block_rejected() {
        // An "empty" block with a non-canonical seed must not validate.
        let alice = kp(1);
        let accounts = Accounts::genesis([(alice.pk, 100)]);
        let g = genesis();
        let mut fake = Block::empty(1, g.hash(), &g.seed);
        fake.seed = [0x99u8; 32];
        assert_eq!(
            fake.validate(&g, &accounts, 1_000_000, 3_600_000_000),
            Err(BlockError::BadSeed)
        );
    }
}
