//! The Algorand ledger: transactions, accounts, blocks, seeds, and chains.
//!
//! This crate implements the data layer of the paper: signed payments (§3),
//! balance-derived sortition weights (§8.1), block format and validation
//! (§8.1), the seed chain with its refresh and fallback rules (§5.2–§5.3),
//! certificate-backed bootstrapping (§8.3), fork tracking and the
//! canonical-chain switch used by recovery (§8.2), and sharded storage
//! accounting (§8.3).
//!
//! # Examples
//!
//! ```
//! use algorand_crypto::Keypair;
//! use algorand_ledger::{Blockchain, ChainParams};
//!
//! let alice = Keypair::from_seed([1u8; 32]);
//! let bob = Keypair::from_seed([2u8; 32]);
//! let chain = Blockchain::new(
//!     ChainParams::paper(),
//!     [(alice.pk, 100), (bob.pk, 50)],
//!     [0u8; 32],
//! );
//! assert_eq!(chain.accounts().balance(&alice.pk), 100);
//! assert_eq!(chain.next_round(), 1);
//! ```

pub mod account;
pub mod block;
pub mod chain;
pub mod seed;
pub mod transaction;

/// Canonical byte encoding (re-exported from `algorand-crypto`, the bottom
/// of the crate stack, so consensus messages can share it).
pub use algorand_crypto::codec;

pub use account::{Accounts, TxError};
pub use block::{Block, BlockError};
pub use chain::{shard_of, Blockchain, ChainError, ChainParams};
pub use transaction::Transaction;
