//! Account state: balances, nonces, and the weight view used by sortition.
//!
//! "The list of transactions in a block logically translates to a set of
//! weights for each user's public key (based on the balance of currency for
//! that key), along with the total weight of all outstanding currency"
//! (§8.1).

use crate::transaction::Transaction;
use algorand_ba::RoundWeights;
use algorand_crypto::PublicKey;
use std::collections::BTreeMap;

/// Why a transaction was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxError {
    /// The signature does not verify under the sender's key.
    BadSignature,
    /// The sender's balance is below the transferred amount.
    InsufficientBalance,
    /// The nonce is not exactly the sender's next sequence number.
    BadNonce,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TxError::BadSignature => "bad signature",
            TxError::InsufficientBalance => "insufficient balance",
            TxError::BadNonce => "bad nonce",
        };
        f.write_str(s)
    }
}

impl std::error::Error for TxError {}

/// The full account state at some point in the chain.
///
/// `BTreeMap` keeps iteration deterministic, which matters for weight
/// snapshots and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Accounts {
    balances: BTreeMap<[u8; 32], u64>,
    nonces: BTreeMap<[u8; 32], u64>,
}

impl Accounts {
    /// Creates the genesis state from initial allocations.
    pub fn genesis<I: IntoIterator<Item = (PublicKey, u64)>>(alloc: I) -> Accounts {
        let mut balances = BTreeMap::new();
        for (pk, amount) in alloc {
            if amount > 0 {
                *balances.entry(pk.to_bytes()).or_insert(0) += amount;
            }
        }
        Accounts {
            balances,
            nonces: BTreeMap::new(),
        }
    }

    /// The balance of an account (0 if absent).
    pub fn balance(&self, pk: &PublicKey) -> u64 {
        self.balances.get(pk.as_bytes()).copied().unwrap_or(0)
    }

    /// The last used nonce of an account (0 if it never sent).
    pub fn nonce(&self, pk: &PublicKey) -> u64 {
        self.nonces.get(pk.as_bytes()).copied().unwrap_or(0)
    }

    /// Total currency in circulation (the sortition denominator W).
    pub fn total(&self) -> u64 {
        self.balances.values().sum()
    }

    /// Number of accounts with a nonzero balance.
    pub fn len(&self) -> usize {
        self.balances.len()
    }

    /// True when no account holds currency.
    pub fn is_empty(&self) -> bool {
        self.balances.is_empty()
    }

    /// Checks a transaction against this state without applying it.
    ///
    /// # Errors
    ///
    /// Returns the specific [`TxError`]; used both by block validation
    /// (§8.1) and by proposers filtering their pending pool.
    pub fn check(&self, tx: &Transaction) -> Result<(), TxError> {
        if !tx.signature_valid() {
            return Err(TxError::BadSignature);
        }
        if tx.nonce != self.nonce(&tx.from) + 1 {
            return Err(TxError::BadNonce);
        }
        if self.balance(&tx.from) < tx.amount {
            return Err(TxError::InsufficientBalance);
        }
        Ok(())
    }

    /// Applies a transaction, mutating balances and the sender nonce.
    ///
    /// # Errors
    ///
    /// Returns the [`TxError`] and leaves the state untouched on failure.
    pub fn apply(&mut self, tx: &Transaction) -> Result<(), TxError> {
        self.check(tx)?;
        let from_bytes = tx.from.to_bytes();
        let to_bytes = tx.to.to_bytes();
        let from_balance = self.balances.get_mut(&from_bytes).expect("checked");
        *from_balance -= tx.amount;
        if *from_balance == 0 {
            self.balances.remove(&from_bytes);
        }
        if tx.amount > 0 {
            *self.balances.entry(to_bytes).or_insert(0) += tx.amount;
        }
        *self.nonces.entry(from_bytes).or_insert(0) += 1;
        Ok(())
    }

    /// Snapshots the balances as sortition weights.
    pub fn weights(&self) -> RoundWeights {
        RoundWeights::from_raw(self.balances.iter().map(|(pk, w)| (*pk, *w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_crypto::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    #[test]
    fn genesis_allocates() {
        let a = kp(1);
        let b = kp(2);
        let acc = Accounts::genesis([(a.pk, 100), (b.pk, 50)]);
        assert_eq!(acc.balance(&a.pk), 100);
        assert_eq!(acc.balance(&b.pk), 50);
        assert_eq!(acc.total(), 150);
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn payment_moves_money_and_conserves_total() {
        let a = kp(1);
        let b = kp(2);
        let mut acc = Accounts::genesis([(a.pk, 100), (b.pk, 50)]);
        let tx = Transaction::payment(&a, b.pk, 30, 1);
        acc.apply(&tx).unwrap();
        assert_eq!(acc.balance(&a.pk), 70);
        assert_eq!(acc.balance(&b.pk), 80);
        assert_eq!(acc.total(), 150);
        assert_eq!(acc.nonce(&a.pk), 1);
    }

    #[test]
    fn overdraft_rejected() {
        let a = kp(1);
        let b = kp(2);
        let mut acc = Accounts::genesis([(a.pk, 10)]);
        let tx = Transaction::payment(&a, b.pk, 11, 1);
        assert_eq!(acc.apply(&tx), Err(TxError::InsufficientBalance));
        assert_eq!(acc.balance(&a.pk), 10);
    }

    #[test]
    fn replay_rejected_by_nonce() {
        let a = kp(1);
        let b = kp(2);
        let mut acc = Accounts::genesis([(a.pk, 100)]);
        let tx = Transaction::payment(&a, b.pk, 30, 1);
        acc.apply(&tx).unwrap();
        // Double-spend attempt: replaying the identical signed transaction.
        assert_eq!(acc.apply(&tx), Err(TxError::BadNonce));
        assert_eq!(acc.balance(&b.pk), 30);
    }

    #[test]
    fn out_of_order_nonce_rejected() {
        let a = kp(1);
        let b = kp(2);
        let mut acc = Accounts::genesis([(a.pk, 100)]);
        let tx2 = Transaction::payment(&a, b.pk, 10, 2);
        assert_eq!(acc.apply(&tx2), Err(TxError::BadNonce));
    }

    #[test]
    fn forged_sender_rejected() {
        let a = kp(1);
        let b = kp(2);
        let thief = kp(3);
        let mut acc = Accounts::genesis([(a.pk, 100)]);
        // Thief signs a payment claiming to be from a.
        let mut tx = Transaction::payment(&thief, b.pk, 100, 1);
        tx.from = a.pk;
        assert_eq!(acc.apply(&tx), Err(TxError::BadSignature));
    }

    #[test]
    fn emptied_account_drops_from_weights() {
        let a = kp(1);
        let b = kp(2);
        let mut acc = Accounts::genesis([(a.pk, 100)]);
        let tx = Transaction::payment(&a, b.pk, 100, 1);
        acc.apply(&tx).unwrap();
        assert_eq!(acc.balance(&a.pk), 0);
        let w = acc.weights();
        assert_eq!(w.total(), 100);
        assert_eq!(w.weight_of(&a.pk), 0);
        assert_eq!(w.weight_of(&b.pk), 100);
    }

    #[test]
    fn zero_amount_payment_allowed_and_bumps_nonce() {
        let a = kp(1);
        let b = kp(2);
        let mut acc = Accounts::genesis([(a.pk, 10)]);
        let tx = Transaction::payment(&a, b.pk, 0, 1);
        acc.apply(&tx).unwrap();
        assert_eq!(acc.nonce(&a.pk), 1);
        assert_eq!(acc.total(), 10);
    }
}
