//! Signed payment transactions (§3, §8.1).
//!
//! Each transaction is "a payment signed by one user's public key
//! transferring money to another user's public key". A per-sender sequence
//! number prevents replay.

use crate::codec::{DecodeError, Reader, WriteExt};
use algorand_crypto::sig::{self, Signature};
use algorand_crypto::{sha256, Keypair, PublicKey};

/// A signed payment.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// The paying account.
    pub from: PublicKey,
    /// The receiving account.
    pub to: PublicKey,
    /// Currency units transferred.
    pub amount: u64,
    /// Sender sequence number; must be exactly the sender's current nonce
    /// plus one, preventing replay and enforcing per-sender ordering.
    pub nonce: u64,
    /// Signature by `from` over all fields above.
    pub sig: Signature,
}

impl Transaction {
    /// The serialized size in bytes: 32 + 32 + 8 + 8 + 64.
    pub const WIRE_SIZE: usize = 144;

    fn signing_digest(from: &PublicKey, to: &PublicKey, amount: u64, nonce: u64) -> [u8; 32] {
        let mut buf = Vec::with_capacity(90);
        buf.put_bytes(b"algorand-repro/tx/v1");
        buf.put_bytes(from.as_bytes());
        buf.put_bytes(to.as_bytes());
        buf.put_u64(amount);
        buf.put_u64(nonce);
        sha256(&buf)
    }

    /// Creates and signs a payment of `amount` from `keypair` to `to`.
    pub fn payment(keypair: &Keypair, to: PublicKey, amount: u64, nonce: u64) -> Transaction {
        let digest = Self::signing_digest(&keypair.pk, &to, amount, nonce);
        Transaction {
            from: keypair.pk,
            to,
            amount,
            nonce,
            sig: sig::sign(keypair, &digest),
        }
    }

    /// Verifies the sender's signature.
    pub fn signature_valid(&self) -> bool {
        let digest = Self::signing_digest(&self.from, &self.to, self.amount, self.nonce);
        sig::verify(&self.from, &digest, &self.sig).is_ok()
    }

    /// A content hash identifying this transaction.
    pub fn id(&self) -> [u8; 32] {
        sha256(&self.encoded())
    }

    /// Appends the canonical encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_bytes(self.from.as_bytes());
        out.put_bytes(self.to.as_bytes());
        out.put_u64(self.amount);
        out.put_u64(self.nonce);
        out.put_bytes(&self.sig.to_bytes());
    }

    /// The canonical encoding as a fresh buffer.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        self.encode(&mut out);
        out
    }

    /// Decodes a transaction, validating key and signature encodings.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Invalid`] for malformed keys or signatures.
    pub fn decode(r: &mut Reader<'_>) -> Result<Transaction, DecodeError> {
        let from = PublicKey::from_bytes(&r.bytes32()?).map_err(|_| DecodeError::Invalid)?;
        let to = PublicKey::from_bytes(&r.bytes32()?).map_err(|_| DecodeError::Invalid)?;
        let amount = r.u64()?;
        let nonce = r.u64()?;
        let mut sig_bytes = [0u8; 64];
        sig_bytes.copy_from_slice(r.bytes(64)?);
        let sig = Signature::from_bytes(&sig_bytes).map_err(|_| DecodeError::Invalid)?;
        Ok(Transaction {
            from,
            to,
            amount,
            nonce,
            sig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    #[test]
    fn payment_signature_verifies() {
        let a = kp(1);
        let b = kp(2);
        let tx = Transaction::payment(&a, b.pk, 50, 1);
        assert!(tx.signature_valid());
    }

    #[test]
    fn tampered_amount_breaks_signature() {
        let a = kp(1);
        let b = kp(2);
        let mut tx = Transaction::payment(&a, b.pk, 50, 1);
        tx.amount = 500;
        assert!(!tx.signature_valid());
    }

    #[test]
    fn encoding_roundtrip() {
        let a = kp(3);
        let b = kp(4);
        let tx = Transaction::payment(&a, b.pk, 123, 7);
        let bytes = tx.encoded();
        assert_eq!(bytes.len(), Transaction::WIRE_SIZE);
        let mut r = Reader::new(&bytes);
        let back = Transaction::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.id(), tx.id());
        assert!(back.signature_valid());
        assert_eq!(back.amount, 123);
        assert_eq!(back.nonce, 7);
    }

    #[test]
    fn ids_differ_by_content() {
        let a = kp(5);
        let b = kp(6);
        let t1 = Transaction::payment(&a, b.pk, 1, 1);
        let t2 = Transaction::payment(&a, b.pk, 2, 1);
        let t3 = Transaction::payment(&a, b.pk, 1, 2);
        assert_ne!(t1.id(), t2.id());
        assert_ne!(t1.id(), t3.id());
    }

    #[test]
    fn decode_rejects_garbage_key() {
        let a = kp(7);
        let b = kp(8);
        let mut bytes = Transaction::payment(&a, b.pk, 1, 1).encoded();
        // Corrupt the `to` key so it no longer decompresses.
        for byte in bytes[32..64].iter_mut() {
            *byte = 0xff;
        }
        let mut r = Reader::new(&bytes);
        assert!(Transaction::decode(&mut r).is_err());
    }
}
