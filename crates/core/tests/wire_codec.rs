//! Wire-codec roundtrips and robustness: every gossip message type encodes
//! and decodes losslessly, and the decoder never panics on arbitrary
//! bytes (what a real transport would feed it).

use algorand_ba::{Certificate, StepKind, VoteMessage};
use algorand_core::wire::CatchupBatch;
use algorand_core::{
    AlgorandParams, BlockMessage, ForkProposalMessage, PriorityMessage, WireMessage,
};
use algorand_crypto::codec::Reader;
use algorand_crypto::rng::Rng;
use algorand_crypto::{vrf, Keypair};
use algorand_ledger::seed::propose_seed;
use algorand_ledger::{Block, Transaction};

fn kp(seed: u8) -> Keypair {
    Keypair::from_seed([seed.max(1); 32])
}

fn sample_block(proposer: &Keypair, payload: usize) -> Block {
    let (seed, proof) = propose_seed(proposer, &[7u8; 32], 3);
    Block {
        round: 3,
        prev_hash: [2u8; 32],
        seed,
        seed_proof: Some(proof),
        proposer: Some(proposer.pk),
        timestamp: 99,
        txs: vec![Transaction::payment(proposer, proposer.pk, 1, 1)],
        payload: vec![0x5a; payload],
    }
}

fn sample_vote(seed: u8) -> VoteMessage {
    let keypair = kp(seed);
    let (sorthash, proof) = vrf::prove(&keypair, b"wire");
    VoteMessage::sign(
        &keypair,
        3,
        StepKind::Main(2),
        sorthash,
        proof,
        [2u8; 32],
        [4u8; 32],
    )
}

fn all_message_kinds() -> Vec<WireMessage> {
    let proposer = kp(1);
    let (sorthash, sort_proof) = vrf::prove(&proposer, b"proposer");
    let block = sample_block(&proposer, 64);
    let fork_block = Block::empty(4, [9u8; 32], &[8u8; 32]);
    let cert = Certificate {
        round: 3,
        step: StepKind::Main(1),
        value: block.hash(),
        votes: vec![sample_vote(2), sample_vote(3)],
    };
    vec![
        WireMessage::Priority(PriorityMessage::sign(
            &proposer,
            3,
            sorthash,
            sort_proof,
            block.hash(),
        )),
        WireMessage::Block(BlockMessage {
            block: block.clone(),
            sorthash,
            sort_proof,
        }),
        WireMessage::Vote(sample_vote(4)),
        WireMessage::ForkProposal(ForkProposalMessage::sign(
            &proposer, 2, 1, sorthash, sort_proof, fork_block,
        )),
        WireMessage::Transaction(Transaction::payment(&proposer, kp(5).pk, 9, 1)),
        WireMessage::CatchupRequest {
            have: 17,
            tip_hash: [0x6Bu8; 32],
        },
        WireMessage::CatchupResponse(CatchupBatch {
            entries: vec![(block, cert)],
        }),
    ]
}

#[test]
fn every_message_kind_roundtrips() {
    for msg in all_message_kinds() {
        let bytes = msg.encoded();
        let mut r = Reader::new(&bytes);
        let back = WireMessage::decode(&mut r).unwrap_or_else(|e| {
            panic!("decode failed for {:?}: {e}", msg.message_id());
        });
        r.finish().expect("no trailing bytes");
        assert_eq!(
            back.message_id(),
            msg.message_id(),
            "roundtrip changed content"
        );
        assert_eq!(back.wire_size(), msg.wire_size());
        assert_eq!(back.relay_slot(), msg.relay_slot());
    }
}

#[test]
fn truncated_messages_are_rejected_not_panicking() {
    for msg in all_message_kinds() {
        let bytes = msg.encoded();
        for cut in [0, 1, bytes.len() / 2, bytes.len().saturating_sub(1)] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                WireMessage::decode(&mut r).is_err(),
                "truncation at {cut} must fail cleanly"
            );
        }
    }
}

#[test]
fn unknown_tag_rejected() {
    let bytes = [0xffu8, 1, 2, 3];
    let mut r = Reader::new(&bytes);
    assert!(WireMessage::decode(&mut r).is_err());
}

/// The decoder must never panic, whatever bytes arrive.
#[test]
fn decoder_never_panics_on_arbitrary_bytes() {
    let mut rng = Rng::seed_from_u64(0xC0DEC);
    for _ in 0..64 {
        let len = rng.gen_range_usize(2048);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        let mut r = Reader::new(&bytes);
        let _ = WireMessage::decode(&mut r);
    }
}

/// Corrupting any single byte of a valid encoding either fails to decode
/// or decodes to a message that re-encodes to the corrupted bytes — the
/// decoder never normalizes corruption back into the original message.
/// (Message ids may legitimately collide: fields like sortition proofs
/// are excluded from a block's id on purpose, since the id names the
/// block content, not its carrier.)
#[test]
fn single_byte_corruption_never_aliases() {
    let mut rng = Rng::seed_from_u64(0xB17F11);
    let msgs = all_message_kinds();
    for msg in &msgs {
        let reference = msg.encoded();
        // Every byte of the first 256, then a random sample of the rest.
        let mut positions: Vec<usize> = (0..reference.len().min(256)).collect();
        for _ in 0..64 {
            positions.push(rng.gen_range_usize(reference.len()));
        }
        for i in positions {
            let mut bytes = reference.clone();
            bytes[i] ^= 0x01;
            let mut r = Reader::new(&bytes);
            if let Ok(back) = WireMessage::decode(&mut r) {
                assert_ne!(
                    back.encoded(),
                    reference,
                    "byte {i} flip silently accepted as the original"
                );
            }
        }
    }
}

#[test]
fn scaled_params_accept_decoded_traffic() {
    // Smoke check that decoded messages flow into a node untouched: feed a
    // re-decoded vote to a fresh node; it must not crash or mis-route.
    let params = AlgorandParams::scaled(4);
    let keypair = kp(9);
    let chain = algorand_ledger::Blockchain::new(params.chain, [(keypair.pk, 10u64)], [0x47u8; 32]);
    let mut node = algorand_core::Node::new(
        keypair,
        chain,
        params,
        std::sync::Arc::new(algorand_core::PipelineVerifier::new()),
    );
    node.start(0);
    let vote = WireMessage::Vote(sample_vote(6));
    let bytes = vote.encoded();
    let mut r = Reader::new(&bytes);
    let decoded = WireMessage::decode(&mut r).unwrap();
    let out = node.on_message(&decoded, 1);
    // A round-3 vote reaching a round-1 node is two rounds ahead: the node
    // buffers it and fires the gap-2 catch-up probe — nothing else.
    assert_eq!(out.len(), 1, "expected exactly the catch-up probe");
    assert!(
        matches!(out[0], WireMessage::CatchupRequest { have: 0, .. }),
        "garbage round-3 vote may only elicit a catch-up request"
    );
}
