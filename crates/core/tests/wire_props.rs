//! Property tests for the wire codec, with randomized message contents.
//!
//! `tests/wire_codec.rs` checks one fixed sample of each message kind;
//! this suite drives the same properties across many seeded-random
//! instances — random rounds, steps, payload sizes, optional fields,
//! batch shapes — using the repository's deterministic [`Rng`] so every
//! failure is reproducible from its seed. Properties:
//!
//! 1. every gossip message kind round-trips byte-identically through
//!    [`WireMessage::decode_frame`];
//! 2. *every* strict prefix of a valid encoding returns a
//!    [`algorand_core::WireDecodeError`] — never a panic, never a bogus
//!    message (frames self-delimit, so a truncated frame is always
//!    detectable);
//! 3. single-bit flips anywhere in a valid encoding never panic and
//!    never alias back to the original message;
//! 4. decode errors carry the message kind and byte offset the
//!    transport logs for attribution.

use algorand_ba::{Certificate, StepKind, VoteMessage};
use algorand_core::wire::CatchupBatch;
use algorand_core::{BlockMessage, ForkProposalMessage, PriorityMessage, WireKind, WireMessage};
use algorand_crypto::rng::Rng;
use algorand_crypto::{vrf, Keypair};
use algorand_ledger::seed::propose_seed;
use algorand_ledger::{Block, Transaction};

fn rand_keypair(rng: &mut Rng) -> Keypair {
    let mut seed = [0u8; 32];
    rng.fill_bytes(&mut seed);
    Keypair::from_seed(seed)
}

fn rand32(rng: &mut Rng) -> [u8; 32] {
    let mut b = [0u8; 32];
    rng.fill_bytes(&mut b);
    b
}

fn rand_step(rng: &mut Rng) -> StepKind {
    match rng.next_u64() % 4 {
        0 => StepKind::Final,
        1 => StepKind::ReductionOne,
        2 => StepKind::ReductionTwo,
        _ => StepKind::Main(1 + (rng.next_u64() % 1_000) as u32),
    }
}

fn rand_block(rng: &mut Rng, proposer: &Keypair) -> Block {
    let round = 1 + rng.next_u64() % 1_000_000;
    if rng.next_u64().is_multiple_of(4) {
        // The empty-block fallback shape: no proposer, no seed proof.
        return Block::empty(round, rand32(rng), &rand32(rng));
    }
    let (seed, proof) = propose_seed(proposer, &rand32(rng), round);
    let mut txs = Vec::new();
    for nonce in 1..=rng.next_u64() % 4 {
        txs.push(Transaction::payment(
            proposer,
            rand_keypair(rng).pk,
            1 + rng.next_u64() % 100,
            nonce,
        ));
    }
    let mut payload = vec![0u8; (rng.next_u64() % 512) as usize];
    rng.fill_bytes(&mut payload);
    Block {
        round,
        prev_hash: rand32(rng),
        seed,
        seed_proof: Some(proof),
        proposer: Some(proposer.pk),
        timestamp: rng.next_u64() % (1 << 40),
        txs,
        payload,
    }
}

fn rand_vote(rng: &mut Rng) -> VoteMessage {
    let keypair = rand_keypair(rng);
    let (sorthash, proof) = vrf::prove(&keypair, &rand32(rng));
    let (round, step) = (1 + rng.next_u64() % 1_000_000, rand_step(rng));
    let (prev, value) = (rand32(rng), rand32(rng));
    VoteMessage::sign(&keypair, round, step, sorthash, proof, prev, value)
}

/// One randomized instance of each of the seven wire message kinds.
fn rand_messages(rng: &mut Rng) -> Vec<WireMessage> {
    let proposer = rand_keypair(rng);
    let (sorthash, sort_proof) = vrf::prove(&proposer, &rand32(rng));
    let block = rand_block(rng, &proposer);
    let entries = (0..1 + rng.next_u64() % 3)
        .map(|_| {
            let b = rand_block(rng, &proposer);
            let c = Certificate {
                round: b.round,
                step: rand_step(rng),
                value: b.hash(),
                votes: (0..rng.next_u64() % 3).map(|_| rand_vote(rng)).collect(),
            };
            (b, c)
        })
        .collect();
    vec![
        WireMessage::Priority(PriorityMessage::sign(
            &proposer,
            block.round,
            sorthash,
            sort_proof,
            block.hash(),
        )),
        WireMessage::Block(BlockMessage {
            block: block.clone(),
            sorthash,
            sort_proof,
        }),
        WireMessage::Vote(rand_vote(rng)),
        WireMessage::ForkProposal(ForkProposalMessage::sign(
            &proposer,
            rng.next_u64() % 1_000,
            (rng.next_u64() % 16) as u32,
            sorthash,
            sort_proof,
            Block::empty(block.round, rand32(rng), &rand32(rng)),
        )),
        WireMessage::Transaction(Transaction::payment(
            &proposer,
            rand_keypair(rng).pk,
            1 + rng.next_u64() % 1_000,
            1 + rng.next_u64() % 1_000,
        )),
        WireMessage::CatchupRequest {
            have: rng.next_u64(),
            tip_hash: rand32(rng),
        },
        WireMessage::CatchupResponse(CatchupBatch { entries }),
    ]
}

const SEEDS: [u64; 4] = [0xA11CE, 0xB0B5, 0xCAFE5, 0xD00D1E];

#[test]
fn randomized_messages_roundtrip_byte_identically() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for msg in rand_messages(&mut rng) {
            let bytes = msg.encoded();
            let back =
                WireMessage::decode_frame(&bytes).unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
            assert_eq!(back.kind(), msg.kind(), "seed {seed:#x}");
            assert_eq!(
                back.encoded(),
                bytes,
                "seed {seed:#x}: re-encode of {:?} is not canonical",
                msg.kind()
            );
        }
    }
}

#[test]
fn every_strict_prefix_is_a_decode_error() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for msg in rand_messages(&mut rng) {
            let bytes = msg.encoded();
            for cut in 0..bytes.len() {
                assert!(
                    WireMessage::decode_frame(&bytes[..cut]).is_err(),
                    "seed {seed:#x}: {:?} truncated to {cut}/{} bytes decoded",
                    msg.kind(),
                    bytes.len()
                );
            }
        }
    }
}

#[test]
fn bit_flips_never_panic_and_never_alias() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from_u64(seed ^ 0xF11);
        for msg in rand_messages(&mut rng) {
            let reference = msg.encoded();
            // Every bit of the header region, then sampled bytes beyond.
            let mut positions: Vec<usize> = (0..reference.len().min(64)).collect();
            for _ in 0..48 {
                positions.push((rng.next_u64() as usize) % reference.len());
            }
            for pos in positions {
                for bit in 0..8 {
                    let mut bytes = reference.clone();
                    bytes[pos] ^= 1 << bit;
                    if let Ok(back) = WireMessage::decode_frame(&bytes) {
                        assert_ne!(
                            back.encoded(),
                            reference,
                            "seed {seed:#x}: flipping byte {pos} bit {bit} of {:?} \
                             aliased the original message",
                            msg.kind()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn decode_errors_attribute_kind_and_offset() {
    let mut rng = Rng::seed_from_u64(0x0FF5E7);
    for msg in rand_messages(&mut rng) {
        let bytes = msg.encoded();
        // Tail truncation: the tag byte survives, so the error names the
        // kind and points inside what was received.
        let err = WireMessage::decode_frame(&bytes[..bytes.len() - 1])
            .expect_err("tail truncation must fail");
        assert_eq!(err.kind, Some(msg.kind()), "{:?}", msg.kind());
        assert!(
            err.offset < bytes.len(),
            "{:?}: offset {} outside the {}-byte input",
            msg.kind(),
            err.offset,
            bytes.len()
        );
        // The rendering a transport would log: kind name plus offset.
        let text = err.to_string();
        assert!(
            text.contains("at byte") && text.contains(msg.kind().name()),
            "unhelpful decode error: {text}"
        );
    }
    // No tag byte at all: kind is unknown, offset is zero.
    let err = WireMessage::decode_frame(&[]).expect_err("empty frame");
    assert_eq!(err.kind, None);
    assert_eq!(err.offset, 0);
    // An unknown tag is attributed as unknown, not misattributed.
    let err = WireMessage::decode_frame(&[0xEE, 1, 2]).expect_err("bad tag");
    assert_eq!(err.kind, None);
}

/// `WireKind` helpers stay total: every tag maps back, names are stable.
#[test]
fn wire_kind_tags_and_names_are_total() {
    let mut rng = Rng::seed_from_u64(0x7A65);
    for msg in rand_messages(&mut rng) {
        let kind = msg.kind();
        assert_eq!(WireKind::from_tag(msg.encoded()[0]), Some(kind));
        assert!(!kind.name().is_empty());
    }
    assert_eq!(WireKind::from_tag(0), None);
    assert_eq!(WireKind::from_tag(8), None);
}
