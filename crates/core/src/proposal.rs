//! Block proposal: priorities, proposer messages, and their verification
//! (§6).
//!
//! Sortition typically selects several proposers per round
//! (τ_proposer = 26). To converge on one block cheaply, each selected
//! sub-user has a *priority* — the hash of the proposer's VRF output
//! concatenated with the sub-user index — and everyone adopts the
//! highest-priority proposal. Proposers gossip two messages: a small
//! priority message (so users quickly learn who wins and discard other
//! blocks) and the full block.

use algorand_ba::RoundWeights;
use algorand_crypto::codec::{DecodeError, Reader, WriteExt};
use algorand_crypto::sig::{self, Signature};
use algorand_crypto::vrf::{VrfOutput, VrfProof, VRF_PROOF_LEN};
use algorand_crypto::{sha256_concat, Keypair, PublicKey};
use algorand_ledger::Block;
use algorand_sortition::{Role, SortitionParams};

/// Reads a (key, proof, signature)-style fixed block used by several
/// message codecs.
fn read_proof(r: &mut Reader<'_>) -> Result<(VrfOutput, VrfProof), DecodeError> {
    let sorthash = VrfOutput(r.bytes32()?);
    let mut pb = [0u8; VRF_PROOF_LEN];
    pb.copy_from_slice(r.bytes(VRF_PROOF_LEN)?);
    let proof = VrfProof::from_bytes(&pb).map_err(|_| DecodeError::Invalid)?;
    Ok((sorthash, proof))
}

fn read_sig(r: &mut Reader<'_>) -> Result<Signature, DecodeError> {
    let mut sb = [0u8; 64];
    sb.copy_from_slice(r.bytes(64)?);
    Signature::from_bytes(&sb).map_err(|_| DecodeError::Invalid)
}

/// A block-proposal priority, ordered bytewise (higher wins).
pub type Priority = [u8; 32];

/// Computes the priority of a proposer selected as `j` sub-users:
/// `max_{1 ≤ i ≤ j} H(vrf_output ‖ i)` (§6).
pub fn compute_priority(output: &VrfOutput, j: u64) -> Priority {
    debug_assert!(j >= 1);
    let mut best = [0u8; 32];
    for i in 1..=j {
        let h = sha256_concat(&[&output.0, &i.to_le_bytes()]);
        if h > best {
            best = h;
        }
    }
    best
}

/// The small "priority and proof" gossip message (§6; ~200 bytes).
#[derive(Clone, Debug)]
pub struct PriorityMessage {
    /// The proposer.
    pub sender: PublicKey,
    /// The proposal round.
    pub round: u64,
    /// The proposer-role sortition output.
    pub sorthash: VrfOutput,
    /// The sortition proof.
    pub sort_proof: VrfProof,
    /// Hash of the proposed block, so receivers can match the block
    /// message that follows.
    pub block_hash: [u8; 32],
    /// Signature over all fields above.
    pub sig: Signature,
}

impl PriorityMessage {
    /// Serialized size in bytes: 32+8+32+96+32+64.
    pub const WIRE_SIZE: usize = 264;

    fn digest(
        round: u64,
        sorthash: &VrfOutput,
        proof: &VrfProof,
        block_hash: &[u8; 32],
    ) -> [u8; 32] {
        sha256_concat(&[
            b"algorand-repro/priority/v1",
            &round.to_le_bytes(),
            &sorthash.0,
            &proof.to_bytes(),
            block_hash,
        ])
    }

    /// Signs a priority message.
    pub fn sign(
        keypair: &Keypair,
        round: u64,
        sorthash: VrfOutput,
        sort_proof: VrfProof,
        block_hash: [u8; 32],
    ) -> PriorityMessage {
        let digest = Self::digest(round, &sorthash, &sort_proof, &block_hash);
        PriorityMessage {
            sender: keypair.pk,
            round,
            sorthash,
            sort_proof,
            block_hash,
            sig: sig::sign(keypair, &digest),
        }
    }

    /// A content id for gossip dedup.
    ///
    /// Covers every serialized byte: if two encodings differ anywhere,
    /// their ids differ, so a corrupted copy can never alias (and thereby
    /// suppress the relay of) the valid message.
    pub fn message_id(&self) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(Self::WIRE_SIZE);
        self.encode(&mut bytes);
        sha256_concat(&[b"priority-id", &bytes])
    }

    /// Appends the canonical wire encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_bytes(self.sender.as_bytes());
        out.put_u64(self.round);
        out.put_bytes(&self.sorthash.0);
        out.put_bytes(&self.sort_proof.to_bytes());
        out.put_bytes(&self.block_hash);
        out.put_bytes(&self.sig.to_bytes());
    }

    /// Decodes a priority message from the wire.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated or malformed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<PriorityMessage, DecodeError> {
        let sender = PublicKey::from_bytes(&r.bytes32()?).map_err(|_| DecodeError::Invalid)?;
        let round = r.u64()?;
        let (sorthash, sort_proof) = read_proof(r)?;
        let block_hash = r.bytes32()?;
        let sig = read_sig(r)?;
        Ok(PriorityMessage {
            sender,
            round,
            sorthash,
            sort_proof,
            block_hash,
            sig,
        })
    }

    /// Verifies the message and returns the sender's priority.
    ///
    /// Checks the signature, the proposer-role sortition proof against
    /// `(seed, weights, τ_proposer)`, and recomputes the priority from the
    /// certified VRF output. Returns `None` for any failure or if the
    /// sender was not selected.
    pub fn verify(
        &self,
        seed: &[u8; 32],
        weights: &RoundWeights,
        tau_proposer: f64,
    ) -> Option<Priority> {
        let digest = Self::digest(
            self.round,
            &self.sorthash,
            &self.sort_proof,
            &self.block_hash,
        );
        sig::verify(&self.sender, &digest, &self.sig).ok()?;
        let role = Role::BlockProposer { round: self.round };
        let weight = weights.weight_of(&self.sender);
        if weight == 0 {
            return None;
        }
        let certified =
            algorand_sortition::verified_output(&self.sender, &self.sort_proof, seed, role).ok()?;
        if certified != self.sorthash {
            return None;
        }
        let params = SortitionParams {
            tau: tau_proposer,
            total_weight: weights.total(),
        };
        let j = algorand_sortition::sub_users_selected(&certified, weight, params.p());
        if j == 0 {
            return None;
        }
        Some(compute_priority(&certified, j))
    }
}

/// The full-block gossip message (§6's second message kind).
#[derive(Clone, Debug)]
pub struct BlockMessage {
    /// The proposed block (its `proposer` field names the sender).
    pub block: Block,
    /// The proposer-role sortition output.
    pub sorthash: VrfOutput,
    /// The sortition proof.
    pub sort_proof: VrfProof,
}

impl BlockMessage {
    /// Serialized size: the block plus the sortition fields.
    pub fn wire_size(&self) -> usize {
        self.block.wire_size() + 32 + 96
    }

    /// A content id for gossip dedup, covering the block *and* the
    /// sortition attachment (so a corrupted proof cannot alias the valid
    /// message in relay dedup).
    pub fn message_id(&self) -> [u8; 32] {
        sha256_concat(&[
            b"block-id",
            &self.block.hash(),
            &self.sorthash.0,
            &self.sort_proof.to_bytes(),
        ])
    }

    /// Appends the canonical wire encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.block.encode(out);
        out.put_bytes(&self.sorthash.0);
        out.put_bytes(&self.sort_proof.to_bytes());
    }

    /// Decodes a block message from the wire.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated or malformed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<BlockMessage, DecodeError> {
        let block = Block::decode(r)?;
        let (sorthash, sort_proof) = read_proof(r)?;
        Ok(BlockMessage {
            block,
            sorthash,
            sort_proof,
        })
    }

    /// Verifies proposer membership and returns the proposal's priority.
    ///
    /// Block *content* validation (transactions, seed, timestamp) happens
    /// separately via [`Block::validate`]; this checks only that the block
    /// was proposed by a sortition-selected proposer.
    pub fn verify(
        &self,
        seed: &[u8; 32],
        weights: &RoundWeights,
        tau_proposer: f64,
    ) -> Option<Priority> {
        let proposer = self.block.proposer.as_ref()?;
        let role = Role::BlockProposer {
            round: self.block.round,
        };
        let weight = weights.weight_of(proposer);
        if weight == 0 {
            return None;
        }
        let certified =
            algorand_sortition::verified_output(proposer, &self.sort_proof, seed, role).ok()?;
        if certified != self.sorthash {
            return None;
        }
        let params = SortitionParams {
            tau: tau_proposer,
            total_weight: weights.total(),
        };
        let j = algorand_sortition::sub_users_selected(&certified, weight, params.p());
        if j == 0 {
            return None;
        }
        Some(compute_priority(&certified, j))
    }
}

/// Runs proposer sortition; if selected, returns the VRF material and the
/// priority this proposer will advertise.
pub fn proposer_sortition(
    keypair: &Keypair,
    seed: &[u8; 32],
    round: u64,
    weights: &RoundWeights,
    tau_proposer: f64,
) -> Option<(VrfOutput, VrfProof, Priority)> {
    let params = SortitionParams {
        tau: tau_proposer,
        total_weight: weights.total(),
    };
    let sel = algorand_sortition::select(
        keypair,
        seed,
        Role::BlockProposer { round },
        &params,
        weights.weight_of(&keypair.pk),
    )?;
    let priority = compute_priority(&sel.vrf_output, sel.j);
    Some((sel.vrf_output, sel.proof, priority))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    fn setup() -> (Vec<Keypair>, RoundWeights) {
        let kps: Vec<Keypair> = (0..6u8).map(|i| kp(i + 1)).collect();
        let weights = RoundWeights::from_pairs(kps.iter().map(|k| (k.pk, 50u64)));
        (kps, weights)
    }

    #[test]
    fn priority_is_max_over_subusers() {
        let out = VrfOutput([9u8; 32]);
        let p1 = compute_priority(&out, 1);
        let p3 = compute_priority(&out, 3);
        assert!(p3 >= p1);
        // j = 3 priority is the max of the three candidate hashes.
        let candidates: Vec<[u8; 32]> = (1..=3u64)
            .map(|i| sha256_concat(&[&out.0, &i.to_le_bytes()]))
            .collect();
        assert_eq!(p3, *candidates.iter().max().unwrap());
    }

    #[test]
    fn priority_message_roundtrip() {
        let (kps, weights) = setup();
        let seed = [4u8; 32];
        // τ = W so everyone is a proposer.
        let (out, proof, priority) =
            proposer_sortition(&kps[0], &seed, 1, &weights, 300.0).expect("selected");
        let msg = PriorityMessage::sign(&kps[0], 1, out, proof, [7u8; 32]);
        let verified = msg.verify(&seed, &weights, 300.0).expect("valid");
        assert_eq!(verified, priority);
    }

    #[test]
    fn priority_message_rejects_wrong_seed() {
        let (kps, weights) = setup();
        let seed = [4u8; 32];
        let (out, proof, _) =
            proposer_sortition(&kps[0], &seed, 1, &weights, 300.0).expect("selected");
        let msg = PriorityMessage::sign(&kps[0], 1, out, proof, [7u8; 32]);
        assert!(msg.verify(&[5u8; 32], &weights, 300.0).is_none());
    }

    #[test]
    fn priority_message_rejects_unknown_sender() {
        let (kps, weights) = setup();
        let seed = [4u8; 32];
        let stranger = kp(99);
        let (out, proof, _) =
            proposer_sortition(&kps[0], &seed, 1, &weights, 300.0).expect("selected");
        // Stranger re-signs someone else's proof.
        let msg = PriorityMessage::sign(&stranger, 1, out, proof, [7u8; 32]);
        assert!(msg.verify(&seed, &weights, 300.0).is_none());
    }

    #[test]
    fn tampered_block_hash_breaks_signature() {
        let (kps, weights) = setup();
        let seed = [4u8; 32];
        let (out, proof, _) =
            proposer_sortition(&kps[0], &seed, 1, &weights, 300.0).expect("selected");
        let mut msg = PriorityMessage::sign(&kps[0], 1, out, proof, [7u8; 32]);
        msg.block_hash = [8u8; 32];
        assert!(msg.verify(&seed, &weights, 300.0).is_none());
    }

    #[test]
    fn higher_weight_wins_priority_more_often() {
        // A proposer selected for more sub-users takes the max over more
        // hashes, so its priority stochastically dominates. Check across
        // rounds that the whale wins more often than the minnow.
        let whale = kp(50);
        let minnow = kp(51);
        let weights = RoundWeights::from_pairs([(whale.pk, 90u64), (minnow.pk, 10u64)]);
        let mut whale_wins = 0;
        let mut contests = 0;
        for round in 0..60u64 {
            let seed = [round as u8; 32];
            let w = proposer_sortition(&whale, &seed, round, &weights, 100.0);
            let m = proposer_sortition(&minnow, &seed, round, &weights, 100.0);
            if let (Some((_, _, wp)), Some((_, _, mp))) = (w, m) {
                contests += 1;
                if wp > mp {
                    whale_wins += 1;
                }
            }
        }
        assert!(contests > 10, "contests = {contests}");
        assert!(
            whale_wins * 3 > contests * 2,
            "whale won {whale_wins}/{contests}"
        );
    }
}
