//! Stage 1 of the staged message pipeline: ingest.
//!
//! Wire decoding lives in [`crate::wire`] and content-addressed
//! deduplication in the gossip relay; what remains here is the per-round
//! classification that decides where a decoded message goes next:
//! straight to the verify stage, into a buffer, or to the catch-up
//! protocol.

/// How far ahead of the local round incoming votes are buffered.
pub const FUTURE_ROUND_WINDOW: u64 = 3;

/// Where a message for `msg_round` belongs relative to the local round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundClass {
    /// This round: verify and process now (or buffer until BA⋆ starts).
    Current,
    /// Within [`FUTURE_ROUND_WINDOW`]: buffer for replay.
    NearFuture,
    /// Beyond the window: the network is far ahead — request catch-up.
    FarFuture,
    /// Already completed locally: drop.
    Past,
}

/// Classifies a message round against the node's current round.
pub fn classify_round(msg_round: u64, current: u64) -> RoundClass {
    if msg_round == current {
        RoundClass::Current
    } else if msg_round < current {
        RoundClass::Past
    } else if msg_round <= current + FUTURE_ROUND_WINDOW {
        RoundClass::NearFuture
    } else {
        RoundClass::FarFuture
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify_round(5, 5), RoundClass::Current);
        assert_eq!(classify_round(4, 5), RoundClass::Past);
        assert_eq!(classify_round(0, 5), RoundClass::Past);
        assert_eq!(classify_round(6, 5), RoundClass::NearFuture);
        assert_eq!(
            classify_round(5 + FUTURE_ROUND_WINDOW, 5),
            RoundClass::NearFuture
        );
        assert_eq!(
            classify_round(5 + FUTURE_ROUND_WINDOW + 1, 5),
            RoundClass::FarFuture
        );
    }
}
