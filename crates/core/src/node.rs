//! The full Algorand node: round loop, block proposal, BA⋆, recovery.
//!
//! A [`Node`] is sans-io, like the BA⋆ engine underneath it: the driver (a
//! simulator or a real network runtime) delivers messages and clock ticks
//! and transmits whatever the node returns. One node corresponds to one
//! "user" of the paper.
//!
//! Round structure per §4–§8 (all waits from Figure 4):
//!
//! ```text
//! start round r ──► propose (if selected) ──► wait λpriority+λstepvar for
//! priorities ──► wait ≤ λblock for the best block ──► BA⋆ ──► append block,
//! start round r+1
//! ```

use crate::metrics::RoundRecord;
use crate::params::AlgorandParams;
use crate::proposal::{proposer_sortition, BlockMessage, Priority, PriorityMessage};
use crate::recovery::{
    fork_proposer_sortition, recovery_seed, ForkProposalMessage,
};
use crate::wire::{CatchupBatch, WireMessage};
use algorand_ba::{
    BaStar, CachedVerifier, ConsensusKind, Decision, Micros, Output, RoundWeights, VoteMessage,
};
use algorand_crypto::Keypair;
use algorand_ledger::seed::propose_seed;
use algorand_ledger::{Block, Blockchain, Transaction};
use algorand_txpool::TxPool;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How far ahead of the local round incoming votes are buffered.
const FUTURE_ROUND_WINDOW: u64 = 3;

/// Per-round working state.
struct RoundCtx {
    round: u64,
    seed: [u8; 32],
    weights: Arc<RoundWeights>,
    prev_hash: [u8; 32],
    empty_block: Block,
    empty_hash: [u8; 32],
    /// Best (priority, proposer, block hash) seen so far.
    best: Option<(Priority, [u8; 32], [u8; 32])>,
    /// Proposers caught sending conflicting blocks this round (§10.4's
    /// client-side optimization: discard both versions).
    equivocators: HashSet<[u8; 32]>,
    /// First block hash seen from each proposer.
    proposer_blocks: HashMap<[u8; 32], [u8; 32]>,
    /// Votes received before BA⋆ started.
    vote_buffer: Vec<VoteMessage>,
    started: Micros,
    ba_started: Option<Micros>,
}

#[allow(clippy::large_enum_variant)] // One Phase per node; size is irrelevant.
enum Phase {
    /// Collecting priority messages (§6's λpriority + λstepvar wait).
    WaitProposals { until: Micros },
    /// Waiting (≤ λblock) for the body of the highest-priority block.
    WaitBlock { until: Micros, expected: [u8; 32] },
    /// Running BA⋆.
    Ba { engine: Box<BaStar> },
    /// Decided, but the agreed block's pre-image has not arrived yet
    /// (BlockOfHash in Algorithm 3).
    AwaitBlockContent { decision: Decision },
    /// Fork recovery (§8.2).
    Recovery(RecoveryState),
}

struct RecoveryState {
    epoch: u64,
    attempt: u32,
    seed: [u8; 32],
    weights: Arc<RoundWeights>,
    /// Attempt sub-phase.
    phase: RecoveryPhase,
    /// End of the fork-proposal collection window.
    window_until: Micros,
    /// When this attempt gives up and retries with a re-hashed seed.
    attempt_deadline: Micros,
}

#[allow(clippy::large_enum_variant)] // One per node during recovery only.
enum RecoveryPhase {
    WaitProposals {
        until: Micros,
        best: Option<(Priority, Block)>,
    },
    Ba { engine: Box<BaStar> },
}

/// A full Algorand user.
pub struct Node {
    keypair: Keypair,
    params: AlgorandParams,
    chain: Blockchain,
    verifier: Arc<CachedVerifier>,
    /// The mempool: payments submitted locally or heard from gossip,
    /// pending inclusion (§5: "each user collects a block of pending
    /// transactions that they hear about").
    pub pool: TxPool,
    /// Byte budget for the transaction list of an assembled proposal.
    pub block_tx_bytes: usize,
    /// Synthetic payload bytes added to proposed blocks (block-size
    /// experiments; 0 for a real deployment).
    pub payload_bytes: usize,
    /// All block bodies seen, by hash.
    block_cache: HashMap<[u8; 32], Block>,
    /// Votes for rounds we have not reached yet.
    future_votes: HashMap<u64, Vec<VoteMessage>>,
    ctx: RoundCtx,
    phase: Phase,
    records: Vec<RoundRecord>,
    hung: bool,
    last_progress: Micros,
    last_recovery_epoch: u64,
    /// Next wall-clock instant at which the recovery-epoch check runs.
    next_epoch_check: Micros,
    /// Earliest time another catch-up request may be sent (rate limit).
    next_catchup_request: Micros,
    recoveries_completed: usize,
    catchups_applied: usize,
}

impl Node {
    /// Creates a node over an existing chain view. Call
    /// [`Node::start`] to begin participating.
    pub fn new(
        keypair: Keypair,
        chain: Blockchain,
        params: AlgorandParams,
        verifier: Arc<CachedVerifier>,
    ) -> Node {
        let ctx = Self::make_ctx(&chain, 0);
        Node {
            keypair,
            params,
            chain,
            verifier,
            pool: TxPool::default(),
            block_tx_bytes: 1 << 20,
            payload_bytes: 0,
            block_cache: HashMap::new(),
            future_votes: HashMap::new(),
            ctx,
            phase: Phase::WaitProposals { until: 0 },
            records: Vec::new(),
            hung: false,
            last_progress: 0,
            last_recovery_epoch: 0,
            next_epoch_check: params.recovery_interval.max(1),
            next_catchup_request: 0,
            recoveries_completed: 0,
            catchups_applied: 0,
        }
    }

    fn make_ctx(chain: &Blockchain, now: Micros) -> RoundCtx {
        let round = chain.next_round();
        let prev = chain.tip();
        let prev_hash = prev.hash();
        let empty_block = Block::empty(round, prev_hash, &prev.seed);
        let empty_hash = empty_block.hash();
        RoundCtx {
            round,
            seed: chain.selection_seed(round),
            weights: Arc::new(chain.weights_for_round(round)),
            prev_hash,
            empty_block,
            empty_hash,
            best: None,
            equivocators: HashSet::new(),
            proposer_blocks: HashMap::new(),
            vote_buffer: Vec::new(),
            started: now,
            ba_started: None,
        }
    }

    // --- Public accessors ---------------------------------------------------

    /// The node's public key.
    pub fn public_key(&self) -> algorand_crypto::PublicKey {
        self.keypair.pk
    }

    /// The node's view of the ledger.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The round currently being agreed on.
    pub fn current_round(&self) -> u64 {
        self.ctx.round
    }

    /// Completed-round records (the raw data behind the figures).
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// True if BA⋆ hung (MaxSteps) and the node awaits recovery.
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// How many fork recoveries this node has completed.
    pub fn recoveries_completed(&self) -> usize {
        self.recoveries_completed
    }

    /// How many rounds this node adopted via the catch-up protocol.
    pub fn catchups_applied(&self) -> usize {
        self.catchups_applied
    }

    /// Whether a just-processed block message is worth relaying (§6):
    /// "Algorand users discard messages about blocks that do not have the
    /// highest priority seen by that user so far."
    ///
    /// Blocks for other rounds are relayed (peers may be ahead or behind).
    pub fn should_relay_block(&self, b: &crate::proposal::BlockMessage) -> bool {
        if b.block.round != self.ctx.round {
            return true;
        }
        match &self.ctx.best {
            Some((_, _, best_hash)) => *best_hash == b.block.hash(),
            None => true,
        }
    }

    /// Queues a transaction for inclusion in a future proposal and returns
    /// the gossip message that submits it to the network (§4).
    pub fn submit_transaction(&mut self, tx: Transaction) -> Option<WireMessage> {
        self.pool
            .admit(tx.clone(), self.chain.accounts())
            .ok()
            .map(|()| WireMessage::Transaction(tx))
    }

    /// A one-line description of the node's phase (diagnostics only).
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let phase = match &self.phase {
            Phase::WaitProposals { until } => format!("WaitProposals(until={until})"),
            Phase::WaitBlock { until, expected } => {
                format!("WaitBlock(until={until}, expected={:02x}{:02x})", expected[0], expected[1])
            }
            Phase::Ba { engine } => format!(
                "Ba(deadline={:?}, finished={})",
                engine.next_deadline(),
                engine.is_finished()
            ),
            Phase::AwaitBlockContent { decision } => format!(
                "AwaitBlockContent({:02x}{:02x})",
                decision.value[0], decision.value[1]
            ),
            Phase::Recovery(_) => "Recovery".to_string(),
        };
        let best = self
            .ctx
            .best
            .as_ref()
            .map(|(p, _, bh)| format!("best p={:02x}{:02x} bh={:02x}{:02x}", p[0], p[1], bh[0], bh[1]))
            .unwrap_or_else(|| "best none".into());
        format!(
            "round={} {phase} {best} empty={:02x}{:02x} equivocators={}",
            self.ctx.round,
            self.ctx.empty_hash[0],
            self.ctx.empty_hash[1],
            self.ctx.equivocators.len()
        )
    }

    // --- Driving ------------------------------------------------------------

    /// Begins participation: starts the next round.
    pub fn start(&mut self, now: Micros) -> Vec<WireMessage> {
        let mut out = Vec::new();
        self.start_round(now, &mut out);
        out
    }

    /// Delivers a gossip message.
    pub fn on_message(&mut self, msg: &WireMessage, now: Micros) -> Vec<WireMessage> {
        let mut out = Vec::new();
        match msg {
            WireMessage::Priority(p) => self.on_priority(p, now, &mut out),
            WireMessage::Block(b) => self.on_block(b, now, &mut out),
            WireMessage::Vote(v) => self.on_vote(v, now, &mut out),
            WireMessage::ForkProposal(f) => self.on_fork_proposal(f, now, &mut out),
            WireMessage::Transaction(tx) => self.on_transaction(tx),
            WireMessage::CatchupRequest { have } => self.on_catchup_request(*have, &mut out),
            WireMessage::CatchupResponse(batch) => {
                self.on_catchup_response(batch, now, &mut out)
            }
        }
        out
    }

    /// Serves a catch-up request from canonical history (§8.3).
    ///
    /// Responses are bounded to a few rounds per message; a node far behind
    /// iterates. Identical responses from different peers deduplicate by
    /// content in the gossip layer.
    fn on_catchup_request(&mut self, have: u64, out: &mut Vec<WireMessage>) {
        const MAX_ROUNDS_PER_RESPONSE: u64 = 4;
        let tip = self.chain.tip().round;
        if have >= tip {
            return;
        }
        let upto = (have + MAX_ROUNDS_PER_RESPONSE).min(tip);
        let mut entries = Vec::new();
        for r in have + 1..=upto {
            let (Some(block), Some(cert)) =
                (self.chain.block_at(r), self.chain.certificate_at(r))
            else {
                break; // History incomplete (should not happen on canon).
            };
            entries.push((block.clone(), cert.clone()));
        }
        if !entries.is_empty() {
            out.push(WireMessage::CatchupResponse(CatchupBatch { entries }));
        }
    }

    /// Applies a catch-up batch: validate each certificate against our own
    /// chain context, append, and restart the round loop at the new tip.
    fn on_catchup_response(
        &mut self,
        batch: &CatchupBatch,
        now: Micros,
        out: &mut Vec<WireMessage>,
    ) {
        let mut advanced = false;
        for (block, cert) in &batch.entries {
            let next = self.chain.next_round();
            if block.round != next || cert.round != next || cert.value != block.hash() {
                continue;
            }
            let seed = self.chain.selection_seed(next);
            let weights = self.chain.weights_for_round(next);
            let prev_hash = self.chain.tip_hash();
            if cert
                .validate(
                    &self.params.ba,
                    &seed,
                    &prev_hash,
                    &weights,
                    self.verifier.as_ref(),
                )
                .is_err()
            {
                return; // Forged or stale batch; ignore the rest.
            }
            if self
                .chain
                .append(block.clone(), Some(cert.clone()), false, now)
                .is_err()
            {
                return;
            }
            self.catchups_applied += 1;
            advanced = true;
        }
        if advanced {
            self.hung = false;
            self.last_progress = now;
            // Blocks adopted via catch-up commit nonces just like agreed
            // ones: drop what they made stale.
            self.pool.prune(self.chain.accounts());
            self.start_round(now, out);
        }
    }

    /// Emits a rate-limited catch-up request when the network's votes show
    /// we are behind.
    fn maybe_request_catchup(&mut self, now: Micros, out: &mut Vec<WireMessage>) {
        if now < self.next_catchup_request {
            return;
        }
        self.next_catchup_request = now + self.params.ba.lambda_step;
        out.push(WireMessage::CatchupRequest {
            have: self.chain.tip().round,
        });
    }

    /// Admits a gossiped payment into the mempool (§4: each user collects
    /// a block of pending transactions in case they are chosen to
    /// propose). The pool screens signatures (cached), replays, and
    /// duplicates; out-of-order nonces are buffered.
    fn on_transaction(&mut self, tx: &Transaction) {
        let _ = self.pool.admit(tx.clone(), self.chain.accounts());
    }

    /// Whether a just-processed transaction message is new enough to be
    /// worth relaying: only first admissions propagate, so a transaction
    /// traverses each node once.
    pub fn should_relay_transaction(&self, tx: &Transaction) -> bool {
        self.pool.contains(&tx.id())
    }

    /// Advances clocks; fires any due timeouts.
    pub fn on_tick(&mut self, now: Micros) -> Vec<WireMessage> {
        let mut out = Vec::new();
        self.maybe_enter_recovery(now, &mut out);
        match &mut self.phase {
            Phase::WaitProposals { until } => {
                if now >= *until {
                    self.adopt_best_proposal(now, &mut out);
                }
            }
            Phase::WaitBlock { until, .. } => {
                if now >= *until {
                    // λblock expired: fall back to the empty block.
                    self.begin_ba(None, now, &mut out);
                }
            }
            Phase::Ba { engine } => {
                let outputs = engine.on_tick(now);
                self.handle_engine_outputs(outputs, now, &mut out);
            }
            Phase::AwaitBlockContent { .. } => {}
            Phase::Recovery(_) => self.recovery_tick(now, &mut out),
        }
        out
    }

    /// The next instant at which [`Node::on_tick`] must run, if any.
    pub fn next_deadline(&self) -> Option<Micros> {
        let phase_deadline = match &self.phase {
            Phase::WaitProposals { until } => Some(*until),
            Phase::WaitBlock { until, .. } => Some(*until),
            Phase::Ba { engine } => engine.next_deadline(),
            Phase::AwaitBlockContent { .. } => None,
            Phase::Recovery(r) => {
                let sub = match &r.phase {
                    RecoveryPhase::WaitProposals { until, .. } => Some(*until),
                    RecoveryPhase::Ba { engine, .. } => engine.next_deadline(),
                };
                Some(sub.unwrap_or(r.attempt_deadline).min(r.attempt_deadline))
            }
        };
        // Also wake at the next recovery-epoch boundary check.
        let epoch_deadline = if self.params.recovery_interval > 0 {
            Some(self.next_epoch_check)
        } else {
            None
        };
        match (phase_deadline, epoch_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // --- Round lifecycle ------------------------------------------------------

    fn start_round(&mut self, now: Micros, out: &mut Vec<WireMessage>) {
        self.ctx = Self::make_ctx(&self.chain, now);
        self.block_cache
            .insert(self.ctx.empty_hash, self.ctx.empty_block.clone());
        self.phase = Phase::WaitProposals {
            until: now + self.params.proposal_wait(),
        };
        // Proposer sortition (§6).
        if let Some((sorthash, sort_proof, priority)) = proposer_sortition(
            &self.keypair,
            &self.ctx.seed,
            self.ctx.round,
            &self.ctx.weights,
            self.params.tau_proposer,
        ) {
            let block = self.assemble_block(now);
            let block_hash = block.hash();
            self.block_cache.insert(block_hash, block.clone());
            self.chain.observe_block(block.clone());
            self.ctx
                .proposer_blocks
                .insert(self.keypair.pk.to_bytes(), block_hash);
            self.ctx.best = Some((priority, self.keypair.pk.to_bytes(), block_hash));
            out.push(WireMessage::Priority(PriorityMessage::sign(
                &self.keypair,
                self.ctx.round,
                sorthash,
                sort_proof,
                block_hash,
            )));
            out.push(WireMessage::Block(BlockMessage {
                block,
                sorthash,
                sort_proof,
            }));
        }
        // Replay any early-arrived votes for this round once BA⋆ starts.
        if let Some(votes) = self.future_votes.remove(&self.ctx.round) {
            self.ctx.vote_buffer = votes;
        }
    }

    /// Builds this proposer's block from the mempool: the highest-priority
    /// nonce- and balance-consistent run, up to the byte budget. The taken
    /// transactions leave the pool; [`Node::complete_round`] reinserts
    /// them if this proposal loses.
    fn assemble_block(&mut self, now: Micros) -> Block {
        let round = self.ctx.round;
        let prev = self.chain.tip();
        let (seed, seed_proof) = propose_seed(&self.keypair, &prev.seed, round);
        let txs = self
            .pool
            .take_block(self.chain.accounts(), self.block_tx_bytes);
        Block {
            round,
            prev_hash: self.ctx.prev_hash,
            seed,
            seed_proof: Some(seed_proof),
            proposer: Some(self.keypair.pk),
            timestamp: now.max(prev.timestamp + 1),
            txs,
            payload: vec![0u8; self.payload_bytes],
        }
    }

    fn on_priority(&mut self, p: &PriorityMessage, _now: Micros, _out: &mut Vec<WireMessage>) {
        if p.round != self.ctx.round || !matches!(self.phase, Phase::WaitProposals { .. }) {
            return;
        }
        let Some(priority) = p.verify(&self.ctx.seed, &self.ctx.weights, self.params.tau_proposer)
        else {
            return;
        };
        let sender = p.sender.to_bytes();
        // Two different block hashes from one proposer = equivocation.
        match self.ctx.proposer_blocks.get(&sender) {
            Some(prev) if *prev != p.block_hash => {
                self.ctx.equivocators.insert(sender);
            }
            None => {
                self.ctx.proposer_blocks.insert(sender, p.block_hash);
            }
            _ => {}
        }
        if self
            .ctx
            .best
            .as_ref()
            .map(|(best, _, _)| priority > *best)
            .unwrap_or(true)
        {
            self.ctx.best = Some((priority, sender, p.block_hash));
        }
    }

    fn on_block(&mut self, b: &BlockMessage, now: Micros, out: &mut Vec<WireMessage>) {
        let hash = b.block.hash();
        self.block_cache.insert(hash, b.block.clone());
        self.chain.observe_block(b.block.clone());
        if b.block.round != self.ctx.round {
            return;
        }
        // Equivocation detection for the current round.
        if let Some(proposer) = &b.block.proposer {
            let sender = proposer.to_bytes();
            match self.ctx.proposer_blocks.get(&sender) {
                Some(prev) if *prev != hash => {
                    self.ctx.equivocators.insert(sender);
                }
                None => {
                    // Also folds the block's priority into `best`, in case
                    // its priority message was lost.
                    if let Some(priority) =
                        b.verify(&self.ctx.seed, &self.ctx.weights, self.params.tau_proposer)
                    {
                        self.ctx.proposer_blocks.insert(sender, hash);
                        if matches!(self.phase, Phase::WaitProposals { .. })
                            && self
                                .ctx
                                .best
                                .as_ref()
                                .map(|(best, _, _)| priority > *best)
                                .unwrap_or(true)
                        {
                            self.ctx.best = Some((priority, sender, hash));
                        }
                    }
                }
                _ => {}
            }
        }
        // If we were waiting for exactly this block, move on to BA⋆.
        if let Phase::WaitBlock { expected, .. } = &self.phase {
            if *expected == hash {
                let expected = *expected;
                self.begin_ba(Some(expected), now, out);
                return;
            }
        }
        // If a decision was blocked on this block body, complete now.
        if let Phase::AwaitBlockContent { decision } = &self.phase {
            if decision.value == hash {
                let decision = decision.clone();
                self.complete_round(decision, now, out);
            }
        }
    }

    fn on_vote(&mut self, v: &VoteMessage, now: Micros, out: &mut Vec<WireMessage>) {
        match &mut self.phase {
            Phase::Recovery(r) => {
                if let RecoveryPhase::Ba { engine, .. } = &mut r.phase {
                    // The engine checks the round (and prev-hash) itself.
                    let outputs = engine.on_vote(v, now);
                    self.handle_recovery_engine_outputs(outputs, now, out);
                }
                return;
            }
            Phase::Ba { engine } => {
                if v.round == self.ctx.round {
                    let outputs = engine.on_vote(v, now);
                    self.handle_engine_outputs(outputs, now, out);
                    return;
                }
            }
            _ => {
                if v.round == self.ctx.round {
                    self.ctx.vote_buffer.push(v.clone());
                    return;
                }
            }
        }
        // Buffer near-future rounds; request catch-up when the network is
        // clearly far ahead of us.
        if v.round > self.ctx.round && v.round <= self.ctx.round + FUTURE_ROUND_WINDOW {
            self.future_votes.entry(v.round).or_default().push(v.clone());
        } else if v.round > self.ctx.round + FUTURE_ROUND_WINDOW {
            self.maybe_request_catchup(now, out);
        }
    }

    /// End of the proposal wait: pick the highest-priority proposal.
    fn adopt_best_proposal(&mut self, now: Micros, out: &mut Vec<WireMessage>) {
        match &self.ctx.best {
            Some((_, proposer, block_hash)) if !self.ctx.equivocators.contains(proposer) => {
                let block_hash = *block_hash;
                if self.block_cache.contains_key(&block_hash) {
                    self.begin_ba(Some(block_hash), now, out);
                } else {
                    self.phase = Phase::WaitBlock {
                        until: now + self.params.ba.lambda_block,
                        expected: block_hash,
                    };
                }
            }
            _ => self.begin_ba(None, now, out),
        }
    }

    /// Starts BA⋆ with the candidate block (validated) or the empty block.
    fn begin_ba(&mut self, candidate: Option<[u8; 32]>, now: Micros, out: &mut Vec<WireMessage>) {
        let initial = match candidate {
            Some(hash) => {
                let valid = self
                    .block_cache
                    .get(&hash)
                    .map(|b| {
                        b.validate(
                            self.chain.tip(),
                            self.chain.accounts(),
                            now,
                            self.params.chain.max_timestamp_skew,
                        )
                        .is_ok()
                    })
                    .unwrap_or(false);
                if valid {
                    hash
                } else {
                    self.ctx.empty_hash
                }
            }
            None => self.ctx.empty_hash,
        };
        self.ctx.ba_started = Some(now);
        let (mut engine, outputs) = BaStar::start(
            self.params.ba,
            self.keypair.clone(),
            self.ctx.round,
            self.ctx.seed,
            self.ctx.prev_hash,
            initial,
            self.ctx.empty_hash,
            self.ctx.weights.clone(),
            self.verifier.clone(),
            now,
        );
        for msg in outputs {
            if let Output::Gossip(v) = msg {
                out.push(WireMessage::Vote(v));
            }
        }
        // Replay votes that arrived before BA⋆ existed.
        for v in std::mem::take(&mut self.ctx.vote_buffer) {
            engine.ingest(&v);
        }
        let outputs = engine.on_tick(now);
        self.phase = Phase::Ba {
            engine: Box::new(engine),
        };
        self.handle_engine_outputs(outputs, now, out);
    }

    fn handle_engine_outputs(
        &mut self,
        outputs: Vec<Output>,
        now: Micros,
        out: &mut Vec<WireMessage>,
    ) {
        // Flush all gossip first so the decision-time votes (the
        // three-extra-steps rule and the final vote) are not lost.
        let mut decided = None;
        for o in outputs {
            match o {
                Output::Gossip(v) => out.push(WireMessage::Vote(v)),
                Output::BinaryDecided { .. } => {}
                Output::Decided(d) => decided = Some(d),
                Output::Hung => {
                    self.hung = true;
                    return;
                }
            }
        }
        if let Some(d) = decided {
            if self.block_cache.contains_key(&d.value) {
                self.complete_round(d, now, out);
            } else {
                self.phase = Phase::AwaitBlockContent { decision: d };
            }
        }
    }

    fn complete_round(&mut self, decision: Decision, now: Micros, out: &mut Vec<WireMessage>) {
        let block = self
            .block_cache
            .get(&decision.value)
            .expect("caller checked the cache")
            .clone();
        let finalized = decision.kind == ConsensusKind::Final;
        let (binary_done, ba_started) = match &self.phase {
            Phase::Ba { engine } => (
                engine.binary_done_at().unwrap_or(now),
                self.ctx.ba_started.unwrap_or(self.ctx.started),
            ),
            _ => (now, self.ctx.ba_started.unwrap_or(self.ctx.started)),
        };
        match self
            .chain
            .append(block.clone(), Some(decision.certificate.clone()), finalized, now)
        {
            Ok(()) => {}
            Err(_) => {
                // Consensus picked a block we cannot validate: freeze and
                // wait for recovery rather than diverge.
                self.hung = true;
                return;
            }
        }
        if finalized {
            self.chain.finalize(block.round);
            self.chain.prune_side_blocks(block.round);
        }
        // Proposal bodies from completed rounds can no longer be decided
        // on; keep only blocks that future rounds might still reference.
        // First salvage the transactions of this round's *losing*
        // proposals back into the mempool (our own taken ones, and any
        // that reached us only inside a proposal body); the replay check
        // against the just-updated accounts drops whatever the winning
        // block committed.
        let completed = block.round;
        let decided = decision.value;
        let losing_txs: Vec<Transaction> = self
            .block_cache
            .values()
            .filter(|b| b.round == completed && b.hash() != decided)
            .flat_map(|b| b.txs.iter().cloned())
            .collect();
        self.pool.reinsert(losing_txs, self.chain.accounts());
        self.pool.prune(self.chain.accounts());
        self.block_cache.retain(|_, b| b.round > completed);
        self.records.push(RoundRecord {
            round: self.ctx.round,
            started: self.ctx.started,
            ba_started,
            binary_done,
            finished: now,
            kind: decision.kind,
            binary_step: decision.binary_step,
            empty: decision.value == self.ctx.empty_hash,
            block_bytes: block.wire_size(),
        });
        self.last_progress = now;
        self.hung = false;
        self.start_round(now, out);
    }

    // --- Recovery (§8.2) -----------------------------------------------------

    fn maybe_enter_recovery(&mut self, now: Micros, out: &mut Vec<WireMessage>) {
        if self.params.recovery_interval == 0 || now < self.next_epoch_check {
            return;
        }
        // Advance the check cursor first so a node that stays healthy (or
        // is already recovering) does not spin on a past boundary.
        self.next_epoch_check =
            (now / self.params.recovery_interval + 1) * self.params.recovery_interval;
        if matches!(self.phase, Phase::Recovery(_)) {
            return;
        }
        let epoch = now / self.params.recovery_interval;
        let stalled =
            self.hung || now.saturating_sub(self.last_progress) > self.params.recovery_interval;
        if epoch > self.last_recovery_epoch && stalled {
            self.last_recovery_epoch = epoch;
            self.enter_recovery(epoch, 0, now, out);
        }
    }

    fn recovery_context(&self, epoch: u64, attempt: u32) -> ([u8; 32], Arc<RoundWeights>) {
        // The shared reference point: the newest proposed block at least
        // one full interval old (next-to-last period, §8.2).
        let cutoff = (epoch.saturating_sub(1)) * self.params.recovery_interval;
        let (base_round, base_seed) = self.chain.recovery_base(cutoff);
        let seed = recovery_seed(&base_seed, epoch, attempt);
        let weight_round = base_round.saturating_sub(self.params.chain.weight_lookback);
        let weights = Arc::new(self.chain.weights_at_round(weight_round));
        (seed, weights)
    }

    fn enter_recovery(&mut self, epoch: u64, attempt: u32, now: Micros, out: &mut Vec<WireMessage>) {
        let (seed, weights) = self.recovery_context(epoch, attempt);
        let mut best: Option<(Priority, Block)> = None;
        // Fork-proposer sortition: propose an empty block extending the
        // longest fork we have seen.
        if let Some((sorthash, sort_proof, priority)) = fork_proposer_sortition(
            &self.keypair,
            &seed,
            epoch,
            attempt,
            &weights,
            self.params.tau_proposer,
        ) {
            let (tip_hash, _) = self.chain.longest_fork();
            let tip = self
                .chain
                .block_by_hash(&tip_hash)
                .expect("longest fork tip is stored")
                .clone();
            let block = Block::empty(tip.round + 1, tip_hash, &tip.seed);
            self.block_cache.insert(block.hash(), block.clone());
            best = Some((priority, block.clone()));
            out.push(WireMessage::ForkProposal(ForkProposalMessage::sign(
                &self.keypair,
                epoch,
                attempt,
                sorthash,
                sort_proof,
                block,
            )));
        }
        self.phase = Phase::Recovery(RecoveryState {
            epoch,
            attempt,
            seed,
            weights,
            phase: RecoveryPhase::WaitProposals {
                until: now + self.params.proposal_wait(),
                best,
            },
            window_until: now + self.params.proposal_wait(),
            attempt_deadline: now
                + self.params.proposal_wait()
                + self.params.ba.lambda_block
                + 6 * self.params.ba.lambda_step,
        });
    }

    fn on_fork_proposal(&mut self, f: &ForkProposalMessage, now: Micros, out: &mut Vec<WireMessage>) {
        // Cache the proposed block regardless of phase, so a decision can
        // complete even if the proposal arrives late.
        self.block_cache.insert(f.block.hash(), f.block.clone());
        let Phase::Recovery(r) = &mut self.phase else {
            return;
        };
        if f.epoch != r.epoch || f.attempt != r.attempt {
            return;
        }
        let RecoveryPhase::WaitProposals { best, .. } = &mut r.phase else {
            return;
        };
        let Some(priority) = f.verify(&r.seed, &r.weights, self.params.tau_proposer) else {
            return;
        };
        // The proposed fork must be at least as long as our longest (§8.2).
        let our_len = self.chain.longest_fork().1;
        match self.chain.fork_length(&f.block.prev_hash) {
            Some(len) if len + 1 >= our_len => {}
            _ => return,
        }
        let had_best = best.is_some();
        if best.as_ref().map(|(b, _)| priority > *b).unwrap_or(true) {
            *best = Some((priority, f.block.clone()));
        }
        // If the collection window already closed while we had no proposal,
        // this late arrival should start BA promptly rather than waiting
        // for the attempt deadline.
        if !had_best && now >= r.window_until {
            if let RecoveryPhase::WaitProposals { until, .. } = &mut r.phase {
                *until = now;
            }
            self.recovery_tick(now, out);
        }
    }

    fn recovery_tick(&mut self, now: Micros, out: &mut Vec<WireMessage>) {
        let Phase::Recovery(r) = &mut self.phase else {
            return;
        };
        // Attempt expired without a decision: retry with a re-hashed seed.
        if now >= r.attempt_deadline {
            let (epoch, attempt) = (r.epoch, r.attempt + 1);
            self.enter_recovery(epoch, attempt, now, out);
            return;
        }
        match &mut r.phase {
            RecoveryPhase::WaitProposals { until, best } => {
                if now < *until {
                    return;
                }
                let Some((_, block)) = best.clone() else {
                    // No proposal heard; sleep until the attempt deadline
                    // (a late proposal can still move us to BA before it).
                    *until = r.attempt_deadline;
                    return;
                };
                let prev_seed_block = self
                    .chain
                    .block_by_hash(&block.prev_hash)
                    .expect("fork ancestry was validated");
                let empty = Block::empty(block.round, block.prev_hash, &prev_seed_block.seed);
                debug_assert_eq!(empty.hash(), block.hash());
                let (mut engine, outputs) = BaStar::start(
                    self.params.ba,
                    self.keypair.clone(),
                    block.round,
                    r.seed,
                    block.prev_hash,
                    block.hash(),
                    block.hash(),
                    r.weights.clone(),
                    self.verifier.clone(),
                    now,
                );
                for o in outputs {
                    if let Output::Gossip(v) = o {
                        out.push(WireMessage::Vote(v));
                    }
                }
                let more = engine.on_tick(now);
                r.phase = RecoveryPhase::Ba {
                    engine: Box::new(engine),
                };
                self.handle_recovery_engine_outputs(more, now, out);
            }
            RecoveryPhase::Ba { engine, .. } => {
                let outputs = engine.on_tick(now);
                self.handle_recovery_engine_outputs(outputs, now, out);
            }
        }
    }

    fn handle_recovery_engine_outputs(
        &mut self,
        outputs: Vec<Output>,
        now: Micros,
        out: &mut Vec<WireMessage>,
    ) {
        let mut decided = None;
        let mut hung = false;
        for o in outputs {
            match o {
                Output::Gossip(v) => out.push(WireMessage::Vote(v)),
                Output::BinaryDecided { .. } => {}
                Output::Decided(d) => decided = Some(d),
                Output::Hung => hung = true,
            }
        }
        if let Some(d) = decided {
            self.complete_recovery(d, now, out);
        } else if hung {
            // Retry with the next attempt immediately.
            if let Phase::Recovery(r) = &self.phase {
                let (epoch, attempt) = (r.epoch, r.attempt + 1);
                self.enter_recovery(epoch, attempt, now, out);
            }
        }
    }

    fn complete_recovery(&mut self, decision: Decision, now: Micros, out: &mut Vec<WireMessage>) {
        let Some(block) = self.block_cache.get(&decision.value).cloned() else {
            // We decided on a fork block we never saw; retry next attempt.
            if let Phase::Recovery(r) = &self.phase {
                let (epoch, attempt) = (r.epoch, r.attempt + 1);
                self.enter_recovery(epoch, attempt, now, out);
            }
            return;
        };
        // Adopt the agreed fork, then append the agreed empty block.
        if block.prev_hash != self.chain.tip_hash()
            && self.chain.switch_to_fork(block.prev_hash, now).is_err()
        {
            if let Phase::Recovery(r) = &self.phase {
                let (epoch, attempt) = (r.epoch, r.attempt + 1);
                self.enter_recovery(epoch, attempt, now, out);
            }
            return;
        }
        if self
            .chain
            .append(block, Some(decision.certificate), false, now)
            .is_err()
        {
            if let Phase::Recovery(r) = &self.phase {
                let (epoch, attempt) = (r.epoch, r.attempt + 1);
                self.enter_recovery(epoch, attempt, now, out);
            }
            return;
        }
        self.hung = false;
        self.last_progress = now;
        self.recoveries_completed += 1;
        // Fork switches rewind and replay state; re-anchor the mempool on
        // the adopted fork's accounts.
        self.pool.prune(self.chain.accounts());
        self.start_round(now, out);
    }
}

