//! The full Algorand node: round loop, block proposal, BA⋆, recovery.
//!
//! A [`Node`] is sans-io, like the BA⋆ engine underneath it: the driver (a
//! simulator or a real network runtime) delivers messages and clock ticks
//! and transmits whatever the node returns. One node corresponds to one
//! "user" of the paper.
//!
//! Internally every delivery flows through the staged message pipeline:
//!
//! ```text
//! ingest (decode/classify, crate::ingest) ──► verify (type-state
//! wrappers from crate::verify) ──► consume (crate::round +
//! ba::engine) ──► emit (crate::emit)
//! ```
//!
//! The consume stage only has constructors for its inputs inside the
//! verify stage, so unverified messages cannot reach consensus state by
//! construction. Round structure per §4–§8 (all waits from Figure 4):
//!
//! ```text
//! start round r ──► propose (if selected) ──► wait λpriority+λstepvar for
//! priorities ──► wait ≤ λblock for the best block ──► BA⋆ ──► append block,
//! start round r+1
//! ```

use crate::emit::Outbox;
use crate::ingest::{self, RoundClass};
use crate::metrics::{PipelineStats, RoundRecord};
use crate::params::AlgorandParams;
use crate::proposal::{proposer_sortition, BlockMessage, Priority, PriorityMessage};
use crate::recovery::{fork_proposer_sortition, recovery_seed, ForkProposalMessage};
use crate::round::{BlockSighting, BlockStore, FutureVotes, RoundContext};
use crate::verify::PipelineVerifier;
use crate::wire::{CatchupBatch, WireMessage};
use algorand_ba::{
    BaStar, Certificate, ConsensusKind, Decision, Micros, Output, RoundWeights, VoteMessage,
};
use algorand_crypto::codec::{Reader, WriteExt};
use algorand_crypto::Keypair;
use algorand_ledger::seed::{fallback_seed, propose_seed, verify_seed_proposal};
use algorand_ledger::{Block, Blockchain, Transaction};
use algorand_obs::{causal, stable_id, SpanKind, Tracer};
use algorand_txpool::TxPool;
use std::collections::HashMap;
use std::sync::Arc;

#[allow(clippy::large_enum_variant)] // One Phase per node; size is irrelevant.
enum Phase {
    /// Collecting priority messages (§6's λpriority + λstepvar wait).
    WaitProposals { until: Micros },
    /// Waiting (≤ λblock) for the body of the highest-priority block.
    WaitBlock { until: Micros, expected: [u8; 32] },
    /// Running BA⋆.
    Ba { engine: Box<BaStar> },
    /// Decided, but the agreed block's pre-image has not arrived yet
    /// (BlockOfHash in Algorithm 3).
    AwaitBlockContent { decision: Decision },
    /// Fork recovery (§8.2).
    Recovery(RecoveryState),
}

struct RecoveryState {
    epoch: u64,
    attempt: u32,
    seed: [u8; 32],
    weights: Arc<RoundWeights>,
    /// Attempt sub-phase.
    phase: RecoveryPhase,
    /// End of the fork-proposal collection window.
    window_until: Micros,
    /// When this attempt gives up and retries with a re-hashed seed.
    attempt_deadline: Micros,
}

#[allow(clippy::large_enum_variant)] // One per node during recovery only.
enum RecoveryPhase {
    WaitProposals {
        until: Micros,
        best: Option<(Priority, Block)>,
    },
    Ba {
        engine: Box<BaStar>,
    },
}

/// A full Algorand user.
pub struct Node {
    keypair: Keypair,
    params: AlgorandParams,
    chain: Blockchain,
    /// The shared verification stage (and its process-wide cache).
    verifier: Arc<PipelineVerifier>,
    /// The mempool: payments submitted locally or heard from gossip,
    /// pending inclusion (§5: "each user collects a block of pending
    /// transactions that they hear about").
    pub pool: TxPool,
    /// Byte budget for the transaction list of an assembled proposal.
    pub block_tx_bytes: usize,
    /// Synthetic payload bytes added to proposed blocks (block-size
    /// experiments; 0 for a real deployment).
    pub payload_bytes: usize,
    /// All block bodies seen, by hash.
    blocks: BlockStore,
    /// Votes for rounds we have not reached yet.
    future_votes: FutureVotes,
    ctx: RoundContext,
    phase: Phase,
    pipeline: PipelineStats,
    records: Vec<RoundRecord>,
    hung: bool,
    last_progress: Micros,
    last_recovery_epoch: u64,
    /// Next wall-clock instant at which the recovery-epoch check runs.
    next_epoch_check: Micros,
    /// Earliest time another catch-up request may be sent (rate limit).
    next_catchup_request: Micros,
    recoveries_completed: usize,
    catchups_applied: usize,
    /// Tentative-fork reorgs performed by the catch-up protocol (§8.2).
    catchup_reorgs: usize,
    /// Consecutive struggling rounds: each round that needed engine
    /// timeout escalations doubles the next proposal wait (§8.2's retry
    /// doubling applied at the round level), reset on a clean round.
    stepvar_backoff: u32,
    /// Total BA⋆ timeout escalations across completed rounds.
    timeout_escalations: u64,
    /// Catch-up requests fired by the liveness watchdog.
    watchdog_catchups: usize,
    /// Trace sink ([`Tracer::disabled`] until the driver attaches one)
    /// and the node id stamped on emitted spans.
    tracer: Tracer,
    trace_node: u32,
    /// Gossip message ids of block bodies seen this round, by block hash —
    /// the proposal span's causal link to the adopted block. Only
    /// populated while tracing; cleared each round.
    block_msg_ids: HashMap<[u8; 32], u64>,
    /// The block hash BA⋆ started with (the adopted proposal or the empty
    /// block), for proposal-span causal attribution.
    ba_input: [u8; 32],
}

/// [`Node`] is the unit of parallelism for the discrete-event engine:
/// a node owns its chain, mempool, and round state outright, and every
/// shared handle it holds ([`PipelineVerifier`]'s cache, the tracer
/// buffer, pool metrics) is `Send`. Worker threads may therefore process
/// disjoint nodes concurrently. This assertion is the compile-time
/// contract; losing `Send` (e.g. by adding an `Rc` field) breaks the
/// parallel simulator and fails right here.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Node>();
};

impl Node {
    /// Creates a node over an existing chain view. Call
    /// [`Node::start`] to begin participating.
    pub fn new(
        keypair: Keypair,
        chain: Blockchain,
        params: AlgorandParams,
        verifier: Arc<PipelineVerifier>,
    ) -> Node {
        let ctx = RoundContext::new(&chain, 0);
        Node {
            keypair,
            params,
            chain,
            verifier,
            pool: TxPool::default(),
            block_tx_bytes: 1 << 20,
            payload_bytes: 0,
            blocks: BlockStore::new(),
            future_votes: FutureVotes::new(),
            ctx,
            phase: Phase::WaitProposals { until: 0 },
            pipeline: PipelineStats::default(),
            records: Vec::new(),
            hung: false,
            last_progress: 0,
            last_recovery_epoch: 0,
            next_epoch_check: params.recovery_interval.max(1),
            next_catchup_request: 0,
            recoveries_completed: 0,
            catchups_applied: 0,
            catchup_reorgs: 0,
            stepvar_backoff: 0,
            timeout_escalations: 0,
            watchdog_catchups: 0,
            tracer: Tracer::disabled(),
            trace_node: 0,
            block_msg_ids: HashMap::new(),
            ba_input: [0u8; 32],
        }
    }

    /// Attaches a trace sink; subsequent spans are stamped with `node`.
    /// Propagated to each BA⋆ engine as rounds start.
    pub fn set_tracer(&mut self, tracer: Tracer, node: u32) {
        self.tracer = tracer;
        self.trace_node = node;
    }

    /// Cap on λ_stepvar doublings (2⁵ = 32× the base wait).
    pub const MAX_STEPVAR_DOUBLINGS: u32 = 5;

    /// The current proposal-collection wait: λ_priority plus λ_stepvar
    /// doubled once per consecutive struggling round (§8.2).
    fn proposal_wait(&self) -> Micros {
        if self.params.ba.disable_backoff {
            return self.params.lambda_priority + self.params.lambda_stepvar;
        }
        self.params.lambda_priority
            + (self.params.lambda_stepvar << self.stepvar_backoff.min(Self::MAX_STEPVAR_DOUBLINGS))
    }

    // --- Public accessors ---------------------------------------------------

    /// The node's public key.
    pub fn public_key(&self) -> algorand_crypto::PublicKey {
        self.keypair.pk
    }

    /// The node's view of the ledger.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The protocol parameters this node runs with.
    pub fn params(&self) -> &AlgorandParams {
        &self.params
    }

    /// The round currently being agreed on.
    pub fn current_round(&self) -> u64 {
        self.ctx.round()
    }

    /// Completed-round records (the raw data behind the figures).
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Per-stage message counters for this node.
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline
    }

    /// The shared verification stage this node checks messages against.
    pub fn verifier(&self) -> &Arc<PipelineVerifier> {
        &self.verifier
    }

    /// True if BA⋆ hung (MaxSteps) and the node awaits recovery.
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// How many fork recoveries this node has completed.
    pub fn recoveries_completed(&self) -> usize {
        self.recoveries_completed
    }

    /// How many rounds this node adopted via the catch-up protocol.
    pub fn catchups_applied(&self) -> usize {
        self.catchups_applied
    }

    /// How many times catch-up rolled back a tentative fork suffix to
    /// adopt a longer certified chain (§8.2).
    pub fn catchup_reorgs(&self) -> usize {
        self.catchup_reorgs
    }

    /// Catch-up requests fired by the liveness watchdog (stall-driven,
    /// as opposed to far-future-vote-driven).
    pub fn watchdog_catchups(&self) -> usize {
        self.watchdog_catchups
    }

    /// Total BA⋆ timeout escalations, including the round in flight.
    pub fn timeout_escalations(&self) -> u64 {
        let live = match &self.phase {
            Phase::Ba { engine } => engine.timeout_escalations(),
            Phase::Recovery(r) => match &r.phase {
                RecoveryPhase::Ba { engine } => engine.timeout_escalations(),
                _ => 0,
            },
            _ => 0,
        };
        self.timeout_escalations + live
    }

    /// Current λ_stepvar doubling level (0 = clean rounds).
    pub fn stepvar_backoff(&self) -> u32 {
        self.stepvar_backoff
    }

    /// Whether a just-processed block message is worth relaying (§6):
    /// "Algorand users discard messages about blocks that do not have the
    /// highest priority seen by that user so far."
    ///
    /// Blocks for other rounds are relayed (peers may be ahead or behind).
    pub fn should_relay_block(&self, b: &crate::proposal::BlockMessage) -> bool {
        if b.block.round != self.ctx.round() {
            return true;
        }
        self.ctx.relay_worthy(b.block.hash())
    }

    /// Whether a just-processed vote is worth relaying, consulting the
    /// verify stage's cached verdict instead of re-verifying (§8.4: "only
    /// relay messages after validating them").
    ///
    /// Conservative by design: a vote is dropped only when it targets the
    /// round this node is actively running BA⋆ for *and* the cache holds a
    /// known-invalid verdict under this round's seed — exactly the votes
    /// [`Node::on_message`] just verified. Anything the node has not
    /// verified itself (other rounds, other phases) is relayed, so cache
    /// warmth never changes relay behavior.
    pub fn should_relay_vote(&self, v: &VoteMessage) -> bool {
        if v.round != self.ctx.round() || !matches!(self.phase, Phase::Ba { .. }) {
            return true;
        }
        !matches!(
            self.verifier.vote_status(v.message_id(), *self.ctx.seed()),
            Some(None)
        )
    }

    /// Queues a transaction for inclusion in a future proposal and returns
    /// the gossip message that submits it to the network (§4).
    pub fn submit_transaction(&mut self, tx: Transaction) -> Option<WireMessage> {
        self.pool
            .admit(tx.clone(), self.chain.accounts())
            .ok()
            .map(|()| WireMessage::Transaction(tx))
    }

    /// A one-line description of the node's phase (diagnostics only).
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let phase = match &self.phase {
            Phase::WaitProposals { until } => format!("WaitProposals(until={until})"),
            Phase::WaitBlock { until, expected } => {
                format!(
                    "WaitBlock(until={until}, expected={:02x}{:02x})",
                    expected[0], expected[1]
                )
            }
            Phase::Ba { engine } => format!(
                "Ba(deadline={:?}, finished={})",
                engine.next_deadline(),
                engine.is_finished()
            ),
            Phase::AwaitBlockContent { decision } => format!(
                "AwaitBlockContent({:02x}{:02x})",
                decision.value[0], decision.value[1]
            ),
            Phase::Recovery(_) => "Recovery".to_string(),
        };
        let best = self
            .ctx
            .best()
            .map(|(p, _, bh)| {
                format!(
                    "best p={:02x}{:02x} bh={:02x}{:02x}",
                    p[0], p[1], bh[0], bh[1]
                )
            })
            .unwrap_or_else(|| "best none".into());
        let empty_hash = self.ctx.empty_hash();
        format!(
            "round={} {phase} {best} empty={:02x}{:02x} equivocators={}",
            self.ctx.round(),
            empty_hash[0],
            empty_hash[1],
            self.ctx.equivocator_count()
        )
    }

    // --- Driving ------------------------------------------------------------

    /// Begins participation: starts the next round.
    pub fn start(&mut self, now: Micros) -> Vec<WireMessage> {
        let mut out = Outbox::new();
        self.start_round(now, &mut out);
        self.emit(out)
    }

    /// Delivers a gossip message: the pipeline's ingest entry point.
    pub fn on_message(&mut self, msg: &WireMessage, now: Micros) -> Vec<WireMessage> {
        self.pipeline.ingested += 1;
        let mut out = Outbox::new();
        match msg {
            WireMessage::Priority(p) => self.on_priority(p, now, &mut out),
            WireMessage::Block(b) => self.on_block(b, now, &mut out),
            WireMessage::Vote(v) => self.on_vote(v, now, &mut out),
            WireMessage::ForkProposal(f) => self.on_fork_proposal(f, now, &mut out),
            WireMessage::Transaction(tx) => self.on_transaction(tx),
            WireMessage::CatchupRequest { have, tip_hash } => {
                self.on_catchup_request(*have, tip_hash, &mut out)
            }
            WireMessage::CatchupResponse(batch) => self.on_catchup_response(batch, now, &mut out),
        }
        self.emit(out)
    }

    /// The pipeline's emit stage: hands the accumulated gossip back to
    /// the driver and ticks the emit counter.
    fn emit(&mut self, out: Outbox) -> Vec<WireMessage> {
        self.pipeline.emitted += out.len() as u64;
        out.into_vec()
    }

    /// Serves a catch-up request from canonical history (§8.3).
    ///
    /// Responses are bounded to a few rounds per message; a node far behind
    /// iterates. Identical responses from different peers deduplicate by
    /// content in the gossip layer.
    ///
    /// A requester whose tip hash differs from our canonical block at the
    /// same round sits on the losing side of a §8.2 tentative fork; merely
    /// serving `have + 1..` would strand it forever, because every served
    /// certificate binds the majority's previous-block hash. Serving from
    /// the disputed round itself gives the requester the competing
    /// certificate it needs to reorg onto the majority chain.
    fn on_catchup_request(&mut self, have: u64, tip_hash: &[u8; 32], out: &mut Outbox) {
        const MAX_ROUNDS_PER_RESPONSE: u64 = 4;
        let tip = self.chain.tip().round;
        if have >= tip {
            return;
        }
        let on_canon = self
            .chain
            .block_at(have)
            .is_some_and(|b| b.hash() == *tip_hash);
        let start = if on_canon { have + 1 } else { have.max(1) };
        let upto = (start + MAX_ROUNDS_PER_RESPONSE - 1).min(tip);
        let mut entries = Vec::new();
        for r in start..=upto {
            let (Some(block), Some(cert)) = (self.chain.block_at(r), self.chain.certificate_at(r))
            else {
                break; // History incomplete (should not happen on canon).
            };
            entries.push((block.clone(), cert.clone()));
        }
        if !entries.is_empty() {
            out.push(WireMessage::CatchupResponse(CatchupBatch { entries }));
        }
    }

    /// Applies a catch-up batch: validate each certificate against our own
    /// chain context, append, and restart the round loop at the new tip.
    ///
    /// A batch starting at or below our tip is a fork repair (see
    /// [`Node::maybe_reorg_onto`]); when it justifies a reorg, the
    /// tentative suffix is rolled back first and the batch then applies
    /// through the ordinary sequential path.
    fn on_catchup_response(&mut self, batch: &CatchupBatch, now: Micros, out: &mut Outbox) {
        self.maybe_reorg_onto(batch, now);
        let mut advanced = false;
        let mut applied = 0u64;
        for (block, cert) in &batch.entries {
            let next = self.chain.next_round();
            if block.round != next || cert.round != next || cert.value != block.hash() {
                continue;
            }
            let seed = self.chain.selection_seed(next);
            let weights = self.chain.weights_for_round(next);
            let prev_hash = self.chain.tip_hash();
            if cert
                .validate(
                    &self.params.ba,
                    &seed,
                    &prev_hash,
                    &weights,
                    self.verifier.as_ref(),
                )
                .is_err()
            {
                return; // Forged or stale batch; ignore the rest.
            }
            if self
                .chain
                .append(block.clone(), Some(cert.clone()), false, now)
                .is_err()
            {
                return;
            }
            self.catchups_applied += 1;
            applied += 1;
            advanced = true;
        }
        if advanced {
            self.tracer
                .span(
                    SpanKind::Catchup,
                    self.trace_node,
                    self.chain.tip().round,
                    now,
                )
                .label("apply")
                .value(applied)
                .instant();
            self.hung = false;
            self.last_progress = now;
            // The network demonstrably made progress without us; our local
            // timeout history says nothing about its health now.
            self.stepvar_backoff = 0;
            // Blocks adopted via catch-up commit nonces just like agreed
            // ones: drop what they made stale.
            self.pool.prune(self.chain.accounts());
            self.start_round(now, out);
        }
    }

    /// Rolls back a tentatively-certified suffix when a catch-up batch
    /// proves the network adopted a different, strictly longer chain.
    ///
    /// An asymmetric partition can split a round's vote flow so that both
    /// sides tentatively certify *different* blocks (§8.2's fork). The
    /// minority side then stalls forever on plain catch-up: every served
    /// certificate binds the majority's previous-block hash, which never
    /// matches the minority's tip. Repair requires displacing the
    /// tentative suffix, under strict conditions:
    ///
    /// - the batch reaches strictly beyond our tip (a longer certified
    ///   chain; equal length never flips, so two sides cannot ping-pong);
    /// - no displaced round is finalized (final blocks never fork —
    ///   §8.2's safety guarantee stays intact);
    /// - the batch is contiguous, each certificate naming its block;
    /// - the first block connects to our canonical chain at the round
    ///   before the divergence; and
    /// - the first certificate validates against that shared prefix
    ///   (committee context only references rounds below the fork point).
    ///
    /// Transactions in the displaced blocks salvage back into the pool;
    /// the remaining batch entries then apply via the ordinary sequential
    /// catch-up path.
    fn maybe_reorg_onto(&mut self, batch: &CatchupBatch, now: Micros) {
        let (Some((first_block, first_cert)), Some((last_block, _))) =
            (batch.entries.first(), batch.entries.last())
        else {
            return;
        };
        let fork = first_block.round;
        let tip = self.chain.tip().round;
        if fork == 0 || fork > tip || last_block.round <= tip {
            return;
        }
        if (fork..=tip).any(|r| self.chain.is_finalized(r)) {
            return;
        }
        let contiguous = batch.entries.iter().enumerate().all(|(i, (b, c))| {
            b.round == fork + i as u64 && c.round == b.round && c.value == b.hash()
        });
        if !contiguous {
            return;
        }
        let ours = self.chain.block_at(fork).expect("fork <= tip").hash();
        if ours == first_block.hash() {
            return; // Same chain; nothing to repair.
        }
        let prev_hash = self.chain.block_at(fork - 1).expect("below tip").hash();
        if first_block.prev_hash != prev_hash {
            return; // Does not connect to our prefix; fork is deeper.
        }
        let seed = self.chain.selection_seed(fork);
        let weights = self.chain.weights_for_round(fork);
        if first_cert
            .validate(
                &self.params.ba,
                &seed,
                &prev_hash,
                &weights,
                self.verifier.as_ref(),
            )
            .is_err()
        {
            return; // Unproven competing chain; keep ours.
        }
        let rolled_back = tip - fork + 1;
        let salvaged = self.chain.rollback_to(fork - 1);
        self.pool.reinsert(salvaged, self.chain.accounts());
        self.catchup_reorgs += 1;
        self.tracer
            .span(SpanKind::Catchup, self.trace_node, fork, now)
            .label("reorg")
            .value(rolled_back)
            .instant();
    }

    /// Emits a rate-limited catch-up request when the network's votes show
    /// we are behind.
    fn maybe_request_catchup(&mut self, now: Micros, out: &mut Outbox) {
        if now < self.next_catchup_request {
            return;
        }
        self.next_catchup_request = now + self.params.ba.lambda_step;
        let have = self.chain.tip().round;
        self.tracer
            .span(SpanKind::Catchup, self.trace_node, have, now)
            .label("request")
            .instant();
        out.push(WireMessage::CatchupRequest {
            have,
            tip_hash: self.chain.tip_hash(),
        });
    }

    /// Liveness watchdog: a node stalled for half a recovery interval
    /// starts probing peers for agreed rounds it may have missed — the
    /// cheap first escalation rung, well before the §8.2 fork-recovery
    /// machinery arms at the epoch boundary. Stalls this long never occur
    /// in a healthy network (rounds conclude in seconds), so the watchdog
    /// is silent outside fault windows.
    fn watchdog_tick(&mut self, now: Micros, out: &mut Outbox) {
        if self.params.recovery_interval == 0 || matches!(self.phase, Phase::Recovery(_)) {
            return;
        }
        if now.saturating_sub(self.last_progress) <= self.params.recovery_interval / 2 {
            return;
        }
        if now >= self.next_catchup_request {
            self.watchdog_catchups += 1;
            self.tracer
                .span(
                    SpanKind::Catchup,
                    self.trace_node,
                    self.chain.tip().round,
                    now,
                )
                .label("watchdog")
                .instant();
            self.maybe_request_catchup(now, out);
        }
    }

    // --- Crash/restart snapshots ---------------------------------------------

    /// Serializes the node's durable state: the agreed chain with its
    /// certificates, in the same `(block, certificate)` wire encoding the
    /// §8.3 catch-up protocol uses. Volatile state — mempool, proposal
    /// race, buffered votes, BA⋆ progress — is deliberately absent: a
    /// real crash loses it, and a restarted node rebuilds by rejoining.
    pub fn snapshot(&self) -> Vec<u8> {
        let tip = self.chain.tip().round;
        let mut entries: Vec<(&Block, &Certificate)> = Vec::new();
        for r in 1..=tip {
            match (self.chain.block_at(r), self.chain.certificate_at(r)) {
                (Some(b), Some(c)) => entries.push((b, c)),
                _ => break, // History incomplete (should not happen on canon).
            }
        }
        let finalized_through = (1..=tip)
            .take_while(|&r| self.chain.is_finalized(r))
            .last()
            .unwrap_or(0);
        let mut out = Vec::new();
        out.put_u64(finalized_through);
        out.put_u32(entries.len() as u32);
        for (b, c) in entries {
            b.encode(&mut out);
            c.encode(&mut out);
        }
        out
    }

    /// Rebuilds a node from genesis state plus a [`Node::snapshot`].
    ///
    /// Nothing in the snapshot is trusted: every certificate is
    /// re-validated against the growing chain exactly as a live catch-up
    /// batch would be, and restoration stops at the first entry that
    /// fails — a corrupt snapshot yields a shorter chain, never a wrong
    /// one. The returned node has not started a round; drive it with
    /// [`Node::start`] and it rejoins, fetching anything it missed while
    /// down via catch-up.
    pub fn restore(
        keypair: Keypair,
        genesis: Blockchain,
        params: AlgorandParams,
        verifier: Arc<PipelineVerifier>,
        snapshot: &[u8],
        now: Micros,
    ) -> Node {
        let mut chain = genesis;
        let mut r = Reader::new(snapshot);
        if let (Ok(finalized_through), Ok(n)) = (r.u64(), r.u32()) {
            for _ in 0..n {
                let (Ok(block), Ok(cert)) = (Block::decode(&mut r), Certificate::decode(&mut r))
                else {
                    break;
                };
                let next = chain.next_round();
                if block.round != next || cert.round != next || cert.value != block.hash() {
                    break;
                }
                let seed = chain.selection_seed(next);
                let weights = chain.weights_for_round(next);
                let prev_hash = chain.tip_hash();
                if cert
                    .validate(&params.ba, &seed, &prev_hash, &weights, verifier.as_ref())
                    .is_err()
                {
                    break;
                }
                if chain.append(block, Some(cert), false, now).is_err() {
                    break;
                }
            }
            let restored_tip = chain.tip().round;
            if finalized_through > 0 && restored_tip > 0 {
                chain.finalize(finalized_through.min(restored_tip));
            }
        }
        let mut node = Node::new(keypair, chain, params, verifier);
        node.last_progress = now;
        node
    }

    /// Admits a gossiped payment into the mempool (§4: each user collects
    /// a block of pending transactions in case they are chosen to
    /// propose). The pool screens signatures (cached), replays, and
    /// duplicates; out-of-order nonces are buffered.
    fn on_transaction(&mut self, tx: &Transaction) {
        let _ = self.pool.admit(tx.clone(), self.chain.accounts());
    }

    /// Whether a just-processed transaction message is new enough to be
    /// worth relaying: only first admissions propagate, so a transaction
    /// traverses each node once.
    pub fn should_relay_transaction(&self, tx: &Transaction) -> bool {
        self.pool.contains(&tx.id())
    }

    /// Advances clocks; fires any due timeouts.
    pub fn on_tick(&mut self, now: Micros) -> Vec<WireMessage> {
        let mut out = Outbox::new();
        self.maybe_enter_recovery(now, &mut out);
        self.watchdog_tick(now, &mut out);
        match &mut self.phase {
            Phase::WaitProposals { until } => {
                if now >= *until {
                    self.adopt_best_proposal(now, &mut out);
                }
            }
            Phase::WaitBlock { until, .. } => {
                if now >= *until {
                    // λblock expired: fall back to the empty block.
                    self.begin_ba(None, now, &mut out);
                }
            }
            Phase::Ba { engine } => {
                let outputs = engine.on_tick(now);
                self.handle_engine_outputs(outputs, now, &mut out);
            }
            Phase::AwaitBlockContent { .. } => {}
            Phase::Recovery(_) => self.recovery_tick(now, &mut out),
        }
        self.emit(out)
    }

    /// The next instant at which [`Node::on_tick`] must run, if any.
    pub fn next_deadline(&self) -> Option<Micros> {
        let phase_deadline = match &self.phase {
            Phase::WaitProposals { until } => Some(*until),
            Phase::WaitBlock { until, .. } => Some(*until),
            Phase::Ba { engine } => engine.next_deadline(),
            Phase::AwaitBlockContent { .. } => None,
            Phase::Recovery(r) => {
                let sub = match &r.phase {
                    RecoveryPhase::WaitProposals { until, .. } => Some(*until),
                    RecoveryPhase::Ba { engine, .. } => engine.next_deadline(),
                };
                Some(sub.unwrap_or(r.attempt_deadline).min(r.attempt_deadline))
            }
        };
        // Also wake at the next recovery-epoch boundary check.
        let epoch_deadline = if self.params.recovery_interval > 0 {
            Some(self.next_epoch_check)
        } else {
            None
        };
        match (phase_deadline, epoch_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // --- Round lifecycle ------------------------------------------------------

    fn start_round(&mut self, now: Micros, out: &mut Outbox) {
        self.ctx = RoundContext::new(&self.chain, now);
        self.block_msg_ids.clear();
        self.ba_input = [0u8; 32];
        self.blocks
            .insert(self.ctx.empty_hash(), self.ctx.empty_block().clone());
        self.phase = Phase::WaitProposals {
            until: now + self.proposal_wait(),
        };
        // Proposer sortition (§6).
        if let Some((sorthash, sort_proof, priority)) = proposer_sortition(
            &self.keypair,
            self.ctx.seed(),
            self.ctx.round(),
            self.ctx.weights(),
            self.params.tau_proposer,
        ) {
            self.tracer
                .span(SpanKind::Sortition, self.trace_node, self.ctx.round(), now)
                .label("proposer")
                .value(1)
                .instant();
            let block = self.assemble_block(now);
            let block_hash = block.hash();
            self.blocks.insert(block_hash, block.clone());
            self.chain.observe_block(block.clone());
            let msg = PriorityMessage::sign(
                &self.keypair,
                self.ctx.round(),
                sorthash,
                sort_proof,
                block_hash,
            );
            // Our own proposal enters the round through the same verify
            // stage as everyone else's — there is no unverified side door,
            // and the shared cache is pre-warmed for the rest of the
            // network.
            match self.verifier.verify_priority(
                &msg,
                self.ctx.seed(),
                self.ctx.weights(),
                self.params.tau_proposer,
            ) {
                Some(vp) => {
                    debug_assert_eq!(vp.priority(), priority);
                    self.pipeline.verified += 1;
                    self.ctx.observe_priority(&vp);
                    out.push(WireMessage::Priority(msg));
                    let bm = BlockMessage {
                        block,
                        sorthash,
                        sort_proof,
                    };
                    if self.tracer.is_enabled() {
                        self.block_msg_ids
                            .insert(block_hash, stable_id(&bm.message_id()));
                    }
                    out.push(WireMessage::Block(bm));
                }
                None => debug_assert!(false, "own freshly signed proposal must verify"),
            }
        }
        // Replay any early-arrived votes for this round once BA⋆ starts.
        if let Some(votes) = self.future_votes.take(self.ctx.round()) {
            self.ctx.seed_vote_buffer(votes);
        }
    }

    /// Builds this proposer's block from the mempool: the highest-priority
    /// nonce- and balance-consistent run, up to the byte budget. The taken
    /// transactions leave the pool; [`Node::complete_round`] reinserts
    /// them if this proposal loses.
    fn assemble_block(&mut self, now: Micros) -> Block {
        let round = self.ctx.round();
        let prev = self.chain.tip();
        let (seed, seed_proof) = propose_seed(&self.keypair, &prev.seed, round);
        let txs = self
            .pool
            .take_block(self.chain.accounts(), self.block_tx_bytes);
        Block {
            round,
            prev_hash: self.ctx.prev_hash(),
            seed,
            seed_proof: Some(seed_proof),
            proposer: Some(self.keypair.pk),
            timestamp: if self.params.canonical_timestamps {
                prev.timestamp + 1
            } else {
                now.max(prev.timestamp + 1)
            },
            txs,
            payload: vec![0u8; self.payload_bytes],
        }
    }

    fn on_priority(&mut self, p: &PriorityMessage, _now: Micros, _out: &mut Outbox) {
        if p.round != self.ctx.round() || !matches!(self.phase, Phase::WaitProposals { .. }) {
            self.pipeline.rejected_ingest += 1;
            return;
        }
        let verdict = self.verifier.verify_priority(
            p,
            self.ctx.seed(),
            self.ctx.weights(),
            self.params.tau_proposer,
        );
        self.tracer
            .span(SpanKind::Verify, self.trace_node, p.round, _now)
            .label("priority")
            .id(stable_id(&p.message_id()))
            .ok(verdict.is_some())
            .instant();
        let Some(vp) = verdict else {
            self.pipeline.rejected_verify += 1;
            return;
        };
        self.pipeline.verified += 1;
        self.ctx.observe_priority(&vp);
    }

    fn on_block(&mut self, b: &BlockMessage, now: Micros, out: &mut Outbox) {
        let hash = b.block.hash();
        self.blocks.insert(hash, b.block.clone());
        self.chain.observe_block(b.block.clone());
        if b.block.round != self.ctx.round() {
            return;
        }
        if self.tracer.is_enabled() {
            self.block_msg_ids
                .entry(hash)
                .or_insert_with(|| stable_id(&b.message_id()));
        }
        // Equivocation is settled on hashes alone; only a proposer's first
        // block of the round is worth verifying.
        if let Some(proposer) = &b.block.proposer {
            let sender = proposer.to_bytes();
            if self.ctx.note_block(sender, hash) == BlockSighting::New {
                let verdict = self.verifier.verify_block(
                    b,
                    self.ctx.seed(),
                    self.ctx.weights(),
                    self.params.tau_proposer,
                );
                self.tracer
                    .span(SpanKind::Verify, self.trace_node, b.block.round, now)
                    .label("block")
                    .id(stable_id(&b.message_id()))
                    .value(b.block.wire_size() as u64)
                    .ok(verdict.is_some())
                    .instant();
                match verdict {
                    Some(vb) => {
                        self.pipeline.verified += 1;
                        // The block's priority also covers for a lost
                        // priority message, but only while still collecting.
                        let update_best = matches!(self.phase, Phase::WaitProposals { .. });
                        self.ctx.observe_block(&vb, update_best);
                    }
                    None => self.pipeline.rejected_verify += 1,
                }
            }
        }
        // If we were waiting for exactly this block, move on to BA⋆.
        if let Phase::WaitBlock { expected, .. } = &self.phase {
            if *expected == hash {
                let expected = *expected;
                self.begin_ba(Some(expected), now, out);
                return;
            }
        }
        // If a decision was blocked on this block body, complete now.
        if let Phase::AwaitBlockContent { decision } = &self.phase {
            if decision.value == hash {
                let decision = decision.clone();
                self.complete_round(decision, now, out);
            }
        }
    }

    fn on_vote(&mut self, v: &VoteMessage, now: Micros, out: &mut Outbox) {
        match &mut self.phase {
            Phase::Recovery(r) => {
                if let RecoveryPhase::Ba { engine, .. } = &mut r.phase {
                    // The chain-context checks (round, prev-hash) that used
                    // to live inside the engine: a vote failing them is
                    // never verified, but the clock still advances, exactly
                    // as before.
                    let outputs = if !engine.is_finished()
                        && v.round == engine.round()
                        && v.prev_hash == engine.prev_hash()
                    {
                        let ctx = engine.vote_context(v.step);
                        let verdict = self.verifier.verify_vote(v, &ctx, engine.weights());
                        self.tracer
                            .span(SpanKind::Verify, self.trace_node, v.round, now)
                            .step(v.step.code())
                            .label("vote")
                            .id(stable_id(&v.message_id()))
                            .ok(verdict.is_some())
                            .instant();
                        match verdict {
                            Some(vv) => {
                                self.pipeline.verified += 1;
                                engine.on_verified_vote(&vv, now)
                            }
                            None => {
                                self.pipeline.rejected_verify += 1;
                                engine.on_tick(now)
                            }
                        }
                    } else {
                        self.pipeline.rejected_ingest += 1;
                        engine.on_tick(now)
                    };
                    self.handle_recovery_engine_outputs(outputs, now, out);
                }
                return;
            }
            Phase::Ba { engine } => {
                if v.round == engine.round() {
                    let outputs = if !engine.is_finished() && v.prev_hash == engine.prev_hash() {
                        let ctx = engine.vote_context(v.step);
                        let verdict = self.verifier.verify_vote(v, &ctx, engine.weights());
                        self.tracer
                            .span(SpanKind::Verify, self.trace_node, v.round, now)
                            .step(v.step.code())
                            .label("vote")
                            .id(stable_id(&v.message_id()))
                            .ok(verdict.is_some())
                            .instant();
                        match verdict {
                            Some(vv) => {
                                self.pipeline.verified += 1;
                                engine.on_verified_vote(&vv, now)
                            }
                            None => {
                                self.pipeline.rejected_verify += 1;
                                engine.on_tick(now)
                            }
                        }
                    } else {
                        self.pipeline.rejected_ingest += 1;
                        engine.on_tick(now)
                    };
                    self.handle_engine_outputs(outputs, now, out);
                    return;
                }
            }
            _ => {
                if v.round == self.ctx.round() {
                    self.ctx.buffer_vote(v);
                    self.pipeline.buffered_early += 1;
                    return;
                }
            }
        }
        // Buffer near-future rounds; request catch-up when the network is
        // clearly far ahead of us.
        match ingest::classify_round(v.round, self.ctx.round()) {
            RoundClass::NearFuture => {
                let parked = self.future_votes.push(v);
                if parked {
                    self.pipeline.buffered_future += 1;
                } else {
                    self.pipeline.rejected_ingest += 1;
                }
                if self.tracer.is_enabled() {
                    // Staleness accounting for the invariant monitor:
                    // step = round gap, value = buffer occupancy after
                    // the push, ok = whether the vote was parked.
                    self.tracer
                        .span(SpanKind::Tally, self.trace_node, v.round, now)
                        .step((v.round - self.ctx.round()) as u32)
                        .label("future")
                        .id(stable_id(&v.message_id()))
                        .cause(stable_id(&v.sender.to_bytes()))
                        .value(self.future_votes.len() as u64)
                        .ok(parked)
                        .instant();
                }
                // A committee vote two rounds ahead proves the network has
                // certified both our current round and the next: probe for
                // the missing certificates now instead of drifting until
                // the far-future window trips. Healthy nodes are never two
                // rounds behind, so this only fires on a genuine lag (the
                // request is rate-limited like every other catch-up).
                if v.round >= self.ctx.round() + 2 {
                    self.maybe_request_catchup(now, out);
                }
            }
            RoundClass::FarFuture => self.maybe_request_catchup(now, out),
            RoundClass::Past => self.pipeline.rejected_ingest += 1,
            RoundClass::Current => {} // Handled by the phase match above.
        }
    }

    /// End of the proposal wait: pick the highest-priority proposal.
    fn adopt_best_proposal(&mut self, now: Micros, out: &mut Outbox) {
        match self.ctx.best_candidate() {
            Some(block_hash) => {
                if self.blocks.contains(&block_hash) {
                    self.begin_ba(Some(block_hash), now, out);
                } else {
                    self.phase = Phase::WaitBlock {
                        until: now + self.params.ba.lambda_block,
                        expected: block_hash,
                    };
                }
            }
            None => self.begin_ba(None, now, out),
        }
    }

    /// Starts BA⋆ with the candidate block (validated) or the empty block.
    fn begin_ba(&mut self, candidate: Option<[u8; 32]>, now: Micros, out: &mut Outbox) {
        let initial = match candidate {
            Some(hash) => {
                let valid = self
                    .blocks
                    .get(&hash)
                    .map(|b| {
                        b.validate(
                            self.chain.tip(),
                            self.chain.accounts(),
                            now,
                            self.params.chain.max_timestamp_skew,
                        )
                        .is_ok()
                    })
                    .unwrap_or(false);
                if valid {
                    hash
                } else {
                    self.ctx.empty_hash()
                }
            }
            None => self.ctx.empty_hash(),
        };
        self.ctx.set_ba_started(now);
        self.ba_input = initial;
        let (mut engine, outputs) = BaStar::start(
            self.params.ba,
            self.keypair.clone(),
            self.ctx.round(),
            *self.ctx.seed(),
            self.ctx.prev_hash(),
            initial,
            self.ctx.empty_hash(),
            self.ctx.weights().clone(),
            self.verifier.clone(),
            now,
        );
        engine.set_tracer(self.tracer.clone(), self.trace_node);
        for msg in outputs {
            if let Output::Gossip(v) = msg {
                out.vote(v);
            }
        }
        // Replay votes that arrived before BA⋆ existed, through the same
        // verify stage live deliveries take.
        let prev_hash = self.ctx.prev_hash();
        for v in self.ctx.take_vote_buffer() {
            if v.prev_hash != prev_hash {
                self.pipeline.rejected_ingest += 1;
                continue;
            }
            let ctx = engine.vote_context(v.step);
            let verdict = self.verifier.verify_vote(&v, &ctx, engine.weights());
            self.tracer
                .span(SpanKind::Verify, self.trace_node, v.round, now)
                .step(v.step.code())
                .label("vote")
                .id(stable_id(&v.message_id()))
                .ok(verdict.is_some())
                .instant();
            match verdict {
                Some(vv) => {
                    self.pipeline.verified += 1;
                    engine.ingest_verified(&vv, now);
                }
                None => self.pipeline.rejected_verify += 1,
            }
        }
        let outputs = engine.on_tick(now);
        self.phase = Phase::Ba {
            engine: Box::new(engine),
        };
        self.handle_engine_outputs(outputs, now, out);
    }

    fn handle_engine_outputs(&mut self, outputs: Vec<Output>, now: Micros, out: &mut Outbox) {
        // Flush all gossip first so the decision-time votes (the
        // three-extra-steps rule and the final vote) are not lost.
        let mut decided = None;
        for o in outputs {
            match o {
                Output::Gossip(v) => out.vote(v),
                Output::BinaryDecided { .. } => {}
                Output::Decided(d) => decided = Some(d),
                Output::Hung => {
                    self.hung = true;
                    return;
                }
            }
        }
        if let Some(d) = decided {
            if self.blocks.contains(&d.value) {
                self.complete_round(d, now, out);
            } else {
                self.phase = Phase::AwaitBlockContent { decision: d };
            }
        }
    }

    fn complete_round(&mut self, decision: Decision, now: Micros, out: &mut Outbox) {
        let block = self
            .blocks
            .get(&decision.value)
            .expect("caller checked the store")
            .clone();
        let finalized = decision.kind == ConsensusKind::Final;
        let ba_started = self.ctx.ba_started().unwrap_or(self.ctx.started());
        let (binary_done, escalations, concluded_span) = match &self.phase {
            Phase::Ba { engine } => (
                engine.binary_done_at().unwrap_or(now),
                engine.timeout_escalations(),
                engine.last_concluded_span(),
            ),
            _ => (now, 0, 0),
        };
        // Adaptive λ_stepvar: a round whose BA⋆ burned timeouts doubles
        // the next proposal wait; a clean round resets the backoff.
        self.timeout_escalations += escalations;
        if escalations > 0 {
            self.stepvar_backoff = (self.stepvar_backoff + 1).min(Self::MAX_STEPVAR_DOUBLINGS);
        } else {
            self.stepvar_backoff = 0;
        }
        match self.chain.append(
            block.clone(),
            Some(decision.certificate.clone()),
            finalized,
            now,
        ) {
            Ok(()) => {}
            Err(_) => {
                // Consensus picked a block we cannot validate: freeze and
                // wait for recovery rather than diverge.
                self.hung = true;
                return;
            }
        }
        if finalized {
            self.chain.finalize(block.round);
            self.chain.prune_side_blocks(block.round);
        }
        // Proposal bodies from completed rounds can no longer be decided
        // on; keep only blocks that future rounds might still reference.
        // First salvage the transactions of this round's *losing*
        // proposals back into the mempool (our own taken ones, and any
        // that reached us only inside a proposal body); the replay check
        // against the just-updated accounts drops whatever the winning
        // block committed.
        let completed = block.round;
        let losing_txs: Vec<Transaction> =
            self.blocks.salvage_losing_txs(completed, decision.value);
        self.pool.reinsert(losing_txs, self.chain.accounts());
        self.pool.prune(self.chain.accounts());
        self.blocks.prune_through(completed);
        self.records.push(RoundRecord {
            round: self.ctx.round(),
            started: self.ctx.started(),
            ba_started,
            binary_done,
            finished: now,
            kind: decision.kind,
            binary_step: decision.binary_step,
            empty: decision.value == self.ctx.empty_hash(),
            block_bytes: block.wire_size(),
        });
        if self.tracer.is_enabled() {
            let round = self.ctx.round();
            let started = self.ctx.started();
            // The proposal phase's causal link: the gossip message id of
            // the block BA⋆ actually started with (0 for the empty block,
            // which no message carried).
            let adopted = if self.ba_input == self.ctx.empty_hash() {
                0
            } else {
                self.block_msg_ids.get(&self.ba_input).copied().unwrap_or(0)
            };
            self.tracer
                .span(SpanKind::Proposal, self.trace_node, round, started)
                .label("proposal")
                .id(causal::proposal_span_id(self.trace_node, round))
                .cause(adopted)
                .ok(decision.value != self.ctx.empty_hash())
                .end_at(ba_started);
            // Seed-chain validity (§5.2): the appended block's seed must
            // be the proposer's VRF output over the previous seed, or the
            // hash-chain fallback for empty blocks.
            let seed_ok = match self.chain.block_by_hash(&block.prev_hash) {
                Some(prev) => match (&block.proposer, &block.seed_proof) {
                    (Some(pk), Some(proof)) => {
                        verify_seed_proposal(pk, proof, &prev.seed, block.round) == Some(block.seed)
                    }
                    _ => block.seed == fallback_seed(&prev.seed, block.round),
                },
                None => false,
            };
            self.tracer
                .span(SpanKind::Verify, self.trace_node, round, now)
                .label("seed")
                .id(stable_id(&decision.value))
                .value(stable_id(&block.seed))
                .ok(seed_ok)
                .instant();
            self.tracer
                .span(SpanKind::Round, self.trace_node, round, started)
                .step(decision.binary_step)
                .label(if finalized { "final" } else { "tentative" })
                .id(stable_id(&decision.value))
                .cause(concluded_span)
                .value(block.wire_size() as u64)
                .ok(finalized)
                .end_at(now);
        }
        self.last_progress = now;
        self.hung = false;
        self.start_round(now, out);
    }

    // --- Recovery (§8.2) -----------------------------------------------------

    fn maybe_enter_recovery(&mut self, now: Micros, out: &mut Outbox) {
        if self.params.recovery_interval == 0 || now < self.next_epoch_check {
            return;
        }
        // Advance the check cursor first so a node that stays healthy (or
        // is already recovering) does not spin on a past boundary.
        self.next_epoch_check =
            (now / self.params.recovery_interval + 1) * self.params.recovery_interval;
        if matches!(self.phase, Phase::Recovery(_)) {
            return;
        }
        let epoch = now / self.params.recovery_interval;
        let stalled =
            self.hung || now.saturating_sub(self.last_progress) > self.params.recovery_interval;
        if epoch > self.last_recovery_epoch && stalled {
            self.last_recovery_epoch = epoch;
            self.enter_recovery(epoch, 0, now, out);
        }
    }

    fn recovery_context(&self, epoch: u64, attempt: u32) -> ([u8; 32], Arc<RoundWeights>) {
        // The shared reference point: the newest proposed block at least
        // one full interval old (next-to-last period, §8.2).
        let cutoff = (epoch.saturating_sub(1)) * self.params.recovery_interval;
        let (base_round, base_seed) = self.chain.recovery_base(cutoff);
        let seed = recovery_seed(&base_seed, epoch, attempt);
        let weight_round = base_round.saturating_sub(self.params.chain.weight_lookback);
        let weights = Arc::new(self.chain.weights_at_round(weight_round));
        (seed, weights)
    }

    fn enter_recovery(&mut self, epoch: u64, attempt: u32, now: Micros, out: &mut Outbox) {
        self.tracer
            .span(
                SpanKind::Fault,
                self.trace_node,
                self.chain.tip().round,
                now,
            )
            .step(attempt)
            .label("recovery_enter")
            .value(epoch)
            .instant();
        let (seed, weights) = self.recovery_context(epoch, attempt);
        let mut best: Option<(Priority, Block)> = None;
        // Fork-proposer sortition: propose an empty block extending the
        // longest fork we have seen.
        if let Some((sorthash, sort_proof, priority)) = fork_proposer_sortition(
            &self.keypair,
            &seed,
            epoch,
            attempt,
            &weights,
            self.params.tau_proposer,
        ) {
            let (tip_hash, _) = self.chain.longest_fork();
            let tip = self
                .chain
                .block_by_hash(&tip_hash)
                .expect("longest fork tip is stored")
                .clone();
            let block = Block::empty(tip.round + 1, tip_hash, &tip.seed);
            self.blocks.insert(block.hash(), block.clone());
            let msg = ForkProposalMessage::sign(
                &self.keypair,
                epoch,
                attempt,
                sorthash,
                sort_proof,
                block,
            );
            // Same rule as round proposals: our own fork proposal goes
            // through the verify stage (warming the shared cache) before
            // it can become the best candidate.
            match self.verifier.verify_fork_proposal(
                &msg,
                &seed,
                &weights,
                self.params.tau_proposer,
            ) {
                Some(vf) => {
                    debug_assert_eq!(vf.priority(), priority);
                    self.pipeline.verified += 1;
                    best = Some((vf.priority(), vf.block().clone()));
                    out.push(WireMessage::ForkProposal(msg));
                }
                None => debug_assert!(false, "own freshly signed fork proposal must verify"),
            }
        }
        self.phase = Phase::Recovery(RecoveryState {
            epoch,
            attempt,
            seed,
            weights,
            phase: RecoveryPhase::WaitProposals {
                until: now + self.params.proposal_wait(),
                best,
            },
            window_until: now + self.params.proposal_wait(),
            attempt_deadline: now
                + self.params.proposal_wait()
                + self.params.ba.lambda_block
                + 6 * self.params.ba.lambda_step,
        });
    }

    fn on_fork_proposal(&mut self, f: &ForkProposalMessage, now: Micros, out: &mut Outbox) {
        // Cache the proposed block regardless of phase, so a decision can
        // complete even if the proposal arrives late.
        self.blocks.insert(f.block.hash(), f.block.clone());
        let Phase::Recovery(r) = &mut self.phase else {
            self.pipeline.rejected_ingest += 1;
            return;
        };
        if f.epoch != r.epoch || f.attempt != r.attempt {
            self.pipeline.rejected_ingest += 1;
            return;
        }
        let RecoveryPhase::WaitProposals { best, .. } = &mut r.phase else {
            self.pipeline.rejected_ingest += 1;
            return;
        };
        let verdict =
            self.verifier
                .verify_fork_proposal(f, &r.seed, &r.weights, self.params.tau_proposer);
        self.tracer
            .span(SpanKind::Verify, self.trace_node, f.block.round, now)
            .label("fork")
            .id(stable_id(&f.message_id()))
            .ok(verdict.is_some())
            .instant();
        let Some(vf) = verdict else {
            self.pipeline.rejected_verify += 1;
            return;
        };
        self.pipeline.verified += 1;
        // The proposed fork must be at least as long as our longest (§8.2).
        let our_len = self.chain.longest_fork().1;
        match self.chain.fork_length(&f.block.prev_hash) {
            Some(len) if len + 1 >= our_len => {}
            _ => return,
        }
        let had_best = best.is_some();
        if best
            .as_ref()
            .map(|(b, _)| vf.priority() > *b)
            .unwrap_or(true)
        {
            *best = Some((vf.priority(), vf.block().clone()));
        }
        // If the collection window already closed while we had no proposal,
        // this late arrival should start BA promptly rather than waiting
        // for the attempt deadline.
        if !had_best && now >= r.window_until {
            if let RecoveryPhase::WaitProposals { until, .. } = &mut r.phase {
                *until = now;
            }
            self.recovery_tick(now, out);
        }
    }

    fn recovery_tick(&mut self, now: Micros, out: &mut Outbox) {
        let Phase::Recovery(r) = &mut self.phase else {
            return;
        };
        // Attempt expired without a decision: retry with a re-hashed seed.
        if now >= r.attempt_deadline {
            let (epoch, attempt) = (r.epoch, r.attempt + 1);
            self.enter_recovery(epoch, attempt, now, out);
            return;
        }
        match &mut r.phase {
            RecoveryPhase::WaitProposals { until, best } => {
                if now < *until {
                    return;
                }
                let Some((_, block)) = best.clone() else {
                    // No proposal heard; sleep until the attempt deadline
                    // (a late proposal can still move us to BA before it).
                    *until = r.attempt_deadline;
                    return;
                };
                let prev_seed_block = self
                    .chain
                    .block_by_hash(&block.prev_hash)
                    .expect("fork ancestry was validated");
                let empty = Block::empty(block.round, block.prev_hash, &prev_seed_block.seed);
                debug_assert_eq!(empty.hash(), block.hash());
                let (mut engine, outputs) = BaStar::start(
                    self.params.ba,
                    self.keypair.clone(),
                    block.round,
                    r.seed,
                    block.prev_hash,
                    block.hash(),
                    block.hash(),
                    r.weights.clone(),
                    self.verifier.clone(),
                    now,
                );
                // Recovery re-runs fork rounds whose (node, round, step)
                // keys collide with the normal rounds' causal namespace;
                // suppress before the tracer attach so the parked
                // reduction-one emission is not flushed with ids either.
                engine.suppress_causal_ids();
                engine.set_tracer(self.tracer.clone(), self.trace_node);
                for o in outputs {
                    if let Output::Gossip(v) = o {
                        out.vote(v);
                    }
                }
                let more = engine.on_tick(now);
                r.phase = RecoveryPhase::Ba {
                    engine: Box::new(engine),
                };
                self.handle_recovery_engine_outputs(more, now, out);
            }
            RecoveryPhase::Ba { engine, .. } => {
                let outputs = engine.on_tick(now);
                self.handle_recovery_engine_outputs(outputs, now, out);
            }
        }
    }

    fn handle_recovery_engine_outputs(
        &mut self,
        outputs: Vec<Output>,
        now: Micros,
        out: &mut Outbox,
    ) {
        let mut decided = None;
        let mut hung = false;
        for o in outputs {
            match o {
                Output::Gossip(v) => out.vote(v),
                Output::BinaryDecided { .. } => {}
                Output::Decided(d) => decided = Some(d),
                Output::Hung => hung = true,
            }
        }
        if let Some(d) = decided {
            self.complete_recovery(d, now, out);
        } else if hung {
            // Retry with the next attempt immediately.
            if let Phase::Recovery(r) = &self.phase {
                let (epoch, attempt) = (r.epoch, r.attempt + 1);
                self.enter_recovery(epoch, attempt, now, out);
            }
        }
    }

    fn complete_recovery(&mut self, decision: Decision, now: Micros, out: &mut Outbox) {
        let Some(block) = self.blocks.get(&decision.value).cloned() else {
            // We decided on a fork block we never saw; retry next attempt.
            if let Phase::Recovery(r) = &self.phase {
                let (epoch, attempt) = (r.epoch, r.attempt + 1);
                self.enter_recovery(epoch, attempt, now, out);
            }
            return;
        };
        // Adopt the agreed fork, then append the agreed empty block.
        if block.prev_hash != self.chain.tip_hash()
            && self.chain.switch_to_fork(block.prev_hash, now).is_err()
        {
            if let Phase::Recovery(r) = &self.phase {
                let (epoch, attempt) = (r.epoch, r.attempt + 1);
                self.enter_recovery(epoch, attempt, now, out);
            }
            return;
        }
        if self
            .chain
            .append(block, Some(decision.certificate), false, now)
            .is_err()
        {
            if let Phase::Recovery(r) = &self.phase {
                let (epoch, attempt) = (r.epoch, r.attempt + 1);
                self.enter_recovery(epoch, attempt, now, out);
            }
            return;
        }
        self.hung = false;
        self.last_progress = now;
        self.recoveries_completed += 1;
        self.stepvar_backoff = 0;
        self.tracer
            .span(
                SpanKind::Fault,
                self.trace_node,
                self.chain.tip().round,
                now,
            )
            .label("recovery_done")
            .instant();
        // Fork switches rewind and replay state; re-anchor the mempool on
        // the adopted fork's accounts.
        self.pool.prune(self.chain.accounts());
        self.start_round(now, out);
    }
}
