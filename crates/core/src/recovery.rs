//! Fork recovery (§8.2).
//!
//! When the network was only weakly synchronous, BA⋆ may have produced
//! tentative consensus on different blocks for different users, splitting
//! them onto forks where neither side can cross vote thresholds again. To
//! restore liveness, users rely on loosely synchronized clocks to stop
//! regular processing at every recovery interval and jointly agree on one
//! fork:
//!
//! 1. a *fork proposer* is drawn by sortition from a seed that predates any
//!    possible fork, and proposes an empty block extending the longest fork
//!    it has seen;
//! 2. everyone adopts the highest-priority proposal whose parent chain is
//!    at least as long as their own longest fork;
//! 3. BA⋆ runs on that proposal; on success everyone switches to the fork.
//!
//! If an attempt fails (BA⋆ hangs or times out), the seed is re-hashed and
//! the protocol retries until consensus is achieved.

use crate::proposal::{compute_priority, Priority};
use algorand_ba::RoundWeights;
use algorand_crypto::codec::{DecodeError, Reader, WriteExt};
use algorand_crypto::sig::{self, Signature};
use algorand_crypto::vrf::{VrfOutput, VrfProof, VRF_PROOF_LEN};
use algorand_crypto::{sha256_concat, Keypair, PublicKey};
use algorand_ledger::Block;
use algorand_sortition::{Role, SortitionParams};

/// Derives the sortition seed for a recovery attempt.
///
/// `base` is the seed of the newest block that predates the fork window
/// (the paper takes it from the next-to-last complete b-long period); each
/// retry re-hashes so that failed attempts draw fresh proposers and
/// committees.
pub fn recovery_seed(base: &[u8; 32], epoch: u64, attempt: u32) -> [u8; 32] {
    sha256_concat(&[
        b"algorand-repro/recovery/v1",
        base,
        &epoch.to_le_bytes(),
        &attempt.to_le_bytes(),
    ])
}

/// A fork proposal: an empty block extending the proposer's longest fork.
#[derive(Clone, Debug)]
pub struct ForkProposalMessage {
    /// The fork proposer.
    pub sender: PublicKey,
    /// The recovery epoch (derived from wall clocks).
    pub epoch: u64,
    /// The retry attempt within the epoch.
    pub attempt: u32,
    /// Fork-proposer sortition output.
    pub sorthash: VrfOutput,
    /// Sortition proof.
    pub sort_proof: VrfProof,
    /// The proposed empty block; its `prev_hash` names the fork tip.
    pub block: Block,
    /// Signature over all fields above.
    pub sig: Signature,
}

impl ForkProposalMessage {
    fn digest(
        epoch: u64,
        attempt: u32,
        sorthash: &VrfOutput,
        proof: &VrfProof,
        block_hash: &[u8; 32],
    ) -> [u8; 32] {
        sha256_concat(&[
            b"algorand-repro/fork-proposal/v1",
            &epoch.to_le_bytes(),
            &attempt.to_le_bytes(),
            &sorthash.0,
            &proof.to_bytes(),
            block_hash,
        ])
    }

    /// Signs a fork proposal.
    pub fn sign(
        keypair: &Keypair,
        epoch: u64,
        attempt: u32,
        sorthash: VrfOutput,
        sort_proof: VrfProof,
        block: Block,
    ) -> ForkProposalMessage {
        let digest = Self::digest(epoch, attempt, &sorthash, &sort_proof, &block.hash());
        ForkProposalMessage {
            sender: keypair.pk,
            epoch,
            attempt,
            sorthash,
            sort_proof,
            block,
            sig: sig::sign(keypair, &digest),
        }
    }

    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        32 + 8 + 4 + 32 + 96 + self.block.wire_size() + 64
    }

    /// A content id for gossip dedup, covering every serialized byte so a
    /// corrupted copy can never alias the valid message.
    pub fn message_id(&self) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(self.wire_size());
        self.encode(&mut bytes);
        sha256_concat(&[b"fork-proposal-id", &bytes])
    }

    /// Appends the canonical wire encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_bytes(self.sender.as_bytes());
        out.put_u64(self.epoch);
        out.put_u32(self.attempt);
        out.put_bytes(&self.sorthash.0);
        out.put_bytes(&self.sort_proof.to_bytes());
        self.block.encode(out);
        out.put_bytes(&self.sig.to_bytes());
    }

    /// Decodes a fork proposal from the wire.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated or malformed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<ForkProposalMessage, DecodeError> {
        let sender = PublicKey::from_bytes(&r.bytes32()?).map_err(|_| DecodeError::Invalid)?;
        let epoch = r.u64()?;
        let attempt = r.u32()?;
        let sorthash = VrfOutput(r.bytes32()?);
        let mut pb = [0u8; VRF_PROOF_LEN];
        pb.copy_from_slice(r.bytes(VRF_PROOF_LEN)?);
        let sort_proof = VrfProof::from_bytes(&pb).map_err(|_| DecodeError::Invalid)?;
        let block = Block::decode(r)?;
        let mut sb = [0u8; 64];
        sb.copy_from_slice(r.bytes(64)?);
        let sig = Signature::from_bytes(&sb).map_err(|_| DecodeError::Invalid)?;
        Ok(ForkProposalMessage {
            sender,
            epoch,
            attempt,
            sorthash,
            sort_proof,
            block,
            sig,
        })
    }

    /// Verifies the proposal against the recovery context; returns the
    /// proposer's priority.
    pub fn verify(
        &self,
        seed: &[u8; 32],
        weights: &RoundWeights,
        tau_proposer: f64,
    ) -> Option<Priority> {
        let digest = Self::digest(
            self.epoch,
            self.attempt,
            &self.sorthash,
            &self.sort_proof,
            &self.block.hash(),
        );
        sig::verify(&self.sender, &digest, &self.sig).ok()?;
        if !self.block.is_empty_block() {
            return None; // Fork proposals must be empty blocks (§8.2).
        }
        let role = Role::ForkProposer {
            epoch: self.epoch,
            attempt: self.attempt,
        };
        let weight = weights.weight_of(&self.sender);
        if weight == 0 {
            return None;
        }
        let certified =
            algorand_sortition::verified_output(&self.sender, &self.sort_proof, seed, role).ok()?;
        if certified != self.sorthash {
            return None;
        }
        let params = SortitionParams {
            tau: tau_proposer,
            total_weight: weights.total(),
        };
        let j = algorand_sortition::sub_users_selected(&certified, weight, params.p());
        if j == 0 {
            return None;
        }
        Some(compute_priority(&certified, j))
    }
}

/// Runs fork-proposer sortition for a recovery attempt.
pub fn fork_proposer_sortition(
    keypair: &Keypair,
    seed: &[u8; 32],
    epoch: u64,
    attempt: u32,
    weights: &RoundWeights,
    tau_proposer: f64,
) -> Option<(VrfOutput, VrfProof, Priority)> {
    let params = SortitionParams {
        tau: tau_proposer,
        total_weight: weights.total(),
    };
    let sel = algorand_sortition::select(
        keypair,
        seed,
        Role::ForkProposer { epoch, attempt },
        &params,
        weights.weight_of(&keypair.pk),
    )?;
    Some((
        sel.vrf_output,
        sel.proof,
        compute_priority(&sel.vrf_output, sel.j),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    #[test]
    fn recovery_seeds_differ_per_attempt_and_epoch() {
        let base = [1u8; 32];
        let s00 = recovery_seed(&base, 0, 0);
        let s01 = recovery_seed(&base, 0, 1);
        let s10 = recovery_seed(&base, 1, 0);
        assert_ne!(s00, s01);
        assert_ne!(s00, s10);
        assert_eq!(recovery_seed(&base, 0, 0), s00);
    }

    #[test]
    fn fork_proposal_roundtrip() {
        let proposer = kp(1);
        let weights = RoundWeights::from_pairs([(proposer.pk, 100u64)]);
        let seed = recovery_seed(&[2u8; 32], 3, 0);
        let (out, proof, priority) =
            fork_proposer_sortition(&proposer, &seed, 3, 0, &weights, 100.0).expect("selected");
        let block = Block::empty(5, [9u8; 32], &[8u8; 32]);
        let msg = ForkProposalMessage::sign(&proposer, 3, 0, out, proof, block);
        assert_eq!(msg.verify(&seed, &weights, 100.0), Some(priority));
    }

    #[test]
    fn non_empty_fork_proposal_rejected() {
        let proposer = kp(1);
        let weights = RoundWeights::from_pairs([(proposer.pk, 100u64)]);
        let seed = recovery_seed(&[2u8; 32], 3, 0);
        let (out, proof, _) =
            fork_proposer_sortition(&proposer, &seed, 3, 0, &weights, 100.0).expect("selected");
        let mut block = Block::empty(5, [9u8; 32], &[8u8; 32]);
        block.proposer = Some(proposer.pk); // No longer an empty block.
        let msg = ForkProposalMessage::sign(&proposer, 3, 0, out, proof, block);
        assert!(msg.verify(&seed, &weights, 100.0).is_none());
    }

    #[test]
    fn fork_proposal_bound_to_attempt() {
        let proposer = kp(1);
        let weights = RoundWeights::from_pairs([(proposer.pk, 100u64)]);
        let seed0 = recovery_seed(&[2u8; 32], 3, 0);
        let (out, proof, _) =
            fork_proposer_sortition(&proposer, &seed0, 3, 0, &weights, 100.0).expect("selected");
        let block = Block::empty(5, [9u8; 32], &[8u8; 32]);
        // Claim the proof was for attempt 1.
        let msg = ForkProposalMessage::sign(&proposer, 3, 1, out, proof, block);
        let seed1 = recovery_seed(&[2u8; 32], 3, 1);
        assert!(msg.verify(&seed1, &weights, 100.0).is_none());
    }
}
