//! The full Algorand parameter set (Figure 4), plus simulation scaling.

use algorand_ba::{BaParams, Micros, SECOND};
use algorand_ledger::ChainParams;

/// All implementation parameters of Figure 4, plus the chain-level ones.
#[derive(Clone, Copy, Debug)]
pub struct AlgorandParams {
    /// Assumed fraction of honest weighted users (h; paper: 80%).
    pub honest_fraction: f64,
    /// Expected number of block proposers (τ_proposer; paper: 26).
    pub tau_proposer: f64,
    /// BA⋆ committee and timing parameters.
    pub ba: BaParams,
    /// Seed refresh interval, look-back, timestamp skew.
    pub chain: ChainParams,
    /// Time to gossip sortition proofs (λ_priority; paper: 5 s).
    pub lambda_priority: Micros,
    /// Estimate of BA⋆ completion-time variance (λ_stepvar; paper: 5 s).
    pub lambda_stepvar: Micros,
    /// Interval of the loosely-synchronized-clock recovery trigger (§8.2;
    /// "every hour" in the paper).
    pub recovery_interval: Micros,
    /// Stamp proposed blocks with the canonical `prev.timestamp + 1`
    /// instead of the proposer's clock.
    ///
    /// Block timestamps are covered by the block hash, so any two
    /// deployments that should finalize *bit-identical* chains — the
    /// discrete-event simulator and a real multi-process network run from
    /// the same seed — must derive timestamps from chain position, not
    /// wall clocks. Canonical stamps remain strictly increasing and stay
    /// within `max_timestamp_skew` of any validator clock for runs
    /// shorter than the skew bound. Production deployments leave this
    /// `false`.
    pub canonical_timestamps: bool,
}

impl AlgorandParams {
    /// The paper's production parameters (Figure 4).
    pub fn paper() -> AlgorandParams {
        AlgorandParams {
            honest_fraction: 0.80,
            tau_proposer: 26.0,
            ba: BaParams::paper(),
            chain: ChainParams::paper(),
            lambda_priority: 5 * SECOND,
            lambda_stepvar: 5 * SECOND,
            recovery_interval: 3600 * SECOND,
            canonical_timestamps: false,
        }
    }

    /// Parameters scaled for laptop-sized simulations.
    ///
    /// The paper's committees (τ_step = 2000, τ_final = 10000) assume tens
    /// of thousands of users. Simulations with `n` users keep the protocol
    /// *shape* — thresholds, step structure, timeout ratios — while scaling
    /// committee sizes down so that a committee is a minority of users but
    /// large enough that honest-majority thresholds are crossed reliably.
    /// The violation probability is correspondingly higher than 5×10⁻⁹;
    /// that affects how often a simulated round retries a step, not the
    /// protocol logic under test.
    pub fn scaled(n_users: usize) -> AlgorandParams {
        Self::scaled_with_stake(n_users, 10)
    }

    /// Like [`AlgorandParams::scaled`], with an explicit per-user stake.
    ///
    /// Committee sizes must be set against *sub-users* (currency units),
    /// not users: the threshold margin in standard deviations is
    /// `(1 − T)·√τ`, so τ must be large enough that honest committees
    /// cross `T·τ` reliably. τ = W/2 (capped at 250 to bound per-step
    /// message counts at large n) gives a ≥ 4.5σ margin everywhere.
    pub fn scaled_with_stake(n_users: usize, stake_per_user: u64) -> AlgorandParams {
        let mut p = AlgorandParams::paper();
        let total = (n_users as u64 * stake_per_user) as f64;
        let tau_step = (total * 0.5).clamp(10.0, 250.0);
        let tau_final = (total * 0.6).clamp(12.0, 300.0);
        p.tau_proposer = ((n_users as f64) * 0.3).clamp(5.0, 26.0);
        p.ba.tau_step = tau_step;
        p.ba.tau_final = tau_final;
        // Timeouts shrink to keep simulated rounds short; ratios match the
        // paper (λ_block : λ_step : λ_priority = 12 : 4 : 1).
        p.ba.lambda_step = 4 * SECOND;
        p.ba.lambda_block = 12 * SECOND;
        p.lambda_priority = SECOND;
        p.lambda_stepvar = SECOND;
        p.chain = ChainParams {
            seed_refresh_interval: 10,
            weight_lookback: 2,
            max_timestamp_skew: 3600 * SECOND,
            min_balance_weights: false,
        };
        p.recovery_interval = 120 * SECOND;
        p
    }

    /// The proposal wait before adopting a highest-priority block (§6):
    /// λ_priority + λ_stepvar.
    pub fn proposal_wait(&self) -> Micros {
        self.lambda_priority + self.lambda_stepvar
    }

    /// How long the gossip relay's per-⟨key, round, step⟩ slots may sit
    /// without round progress before rotating anyway (4λ_step).
    ///
    /// During a liveness stall the round stops advancing, so round-based
    /// slot pruning alone would pin each sender's first vote per step
    /// forever and drop every §8.2 recovery retry as an equivocation.
    /// Several λ_step comfortably exceeds any healthy round's step
    /// cadence, so in normal operation the round advances first and this
    /// horizon never fires.
    pub fn relay_stall_horizon(&self) -> Micros {
        4 * self.ba.lambda_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_figure4() {
        let p = AlgorandParams::paper();
        assert_eq!(p.honest_fraction, 0.80);
        assert_eq!(p.tau_proposer, 26.0);
        assert_eq!(p.chain.seed_refresh_interval, 1000);
        assert_eq!(p.lambda_priority, 5 * SECOND);
        assert_eq!(p.lambda_stepvar, 5 * SECOND);
        assert_eq!(p.proposal_wait(), 10 * SECOND);
    }

    #[test]
    fn scaled_committees_are_bounded_by_stake() {
        for n in [10usize, 50, 100, 1000] {
            let p = AlgorandParams::scaled(n);
            let total_stake = (n * 10) as f64;
            assert!(p.ba.tau_step <= total_stake, "n={n}");
            assert!(p.ba.tau_step >= 10.0, "n={n}");
            assert!(p.ba.tau_final >= p.ba.tau_step);
            assert!(p.tau_proposer >= 1.0);
            // The threshold margin must be at least ~3σ so simulated steps
            // conclude on votes, not timeouts: votes ~ Binomial(W, τ/W)
            // with variance τ(1−τ/W).
            let sel_p = p.ba.tau_step / total_stake;
            let sigma = (p.ba.tau_step * (1.0 - sel_p)).sqrt();
            let margin = (1.0 - p.ba.t_step) * p.ba.tau_step / sigma;
            assert!(margin > 3.0, "n={n} margin={margin}");
        }
    }

    #[test]
    fn scaled_keeps_timeout_ordering() {
        let p = AlgorandParams::scaled(100);
        assert!(p.ba.lambda_block > p.ba.lambda_step);
        assert!(p.ba.lambda_step > p.lambda_priority);
    }
}
