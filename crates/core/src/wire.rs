//! The node's wire protocol: everything Algorand gossips.

use crate::proposal::{BlockMessage, PriorityMessage};
use crate::recovery::ForkProposalMessage;
use algorand_ba::{Certificate, VoteMessage};
use algorand_crypto::codec::{DecodeError, Reader, WriteExt};
use algorand_crypto::sha256_concat;
use algorand_ledger::{Block, Transaction};

/// A catch-up response carrying agreed rounds with their certificates
/// (§8.3: certificates let any user validate prior blocks).
#[derive(Clone, Debug)]
pub struct CatchupBatch {
    /// Consecutive `(block, certificate)` pairs starting at the
    /// requester's next round.
    pub entries: Vec<(Block, Certificate)>,
}

impl CatchupBatch {
    /// Upper bound on entries accepted by the decoder.
    const MAX_ENTRIES: usize = 1024;

    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self
            .entries
            .iter()
            .map(|(b, c)| b.wire_size() + c.wire_size())
            .sum::<usize>()
    }

    /// A content id for gossip dedup. Identical batches served by
    /// different peers deduplicate to one propagation.
    pub fn message_id(&self) -> [u8; 32] {
        let mut parts: Vec<[u8; 32]> = vec![[0xCAu8; 32]];
        for (b, _) in &self.entries {
            parts.push(b.hash());
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| &p[..]).collect();
        sha256_concat(&refs)
    }
}

/// Any message exchanged over the gossip network.
///
/// Variant sizes range from 16 bytes to whole blocks; messages are wrapped
/// in `Arc` by the transport, so the enum itself is never copied in bulk.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum WireMessage {
    /// A proposer's small priority-and-proof message (§6).
    Priority(PriorityMessage),
    /// A proposer's full block (§6).
    Block(BlockMessage),
    /// A BA⋆ committee vote (§7).
    Vote(VoteMessage),
    /// A recovery fork proposal (§8.2).
    ForkProposal(ForkProposalMessage),
    /// A user-submitted payment looking for a proposer (§4).
    Transaction(Transaction),
    /// "I am at round `have`; please send what I missed" (§8.3 catch-up).
    CatchupRequest {
        /// The requester's current tip round.
        have: u64,
    },
    /// Agreed rounds with certificates, answering a catch-up request.
    CatchupResponse(CatchupBatch),
}

impl WireMessage {
    /// Serialized size in bytes, for bandwidth modelling.
    pub fn wire_size(&self) -> usize {
        match self {
            WireMessage::Priority(_) => PriorityMessage::WIRE_SIZE,
            WireMessage::Block(b) => b.wire_size(),
            WireMessage::Vote(_) => VoteMessage::WIRE_SIZE,
            WireMessage::ForkProposal(f) => f.wire_size(),
            WireMessage::Transaction(_) => Transaction::WIRE_SIZE,
            WireMessage::CatchupRequest { .. } => 16,
            WireMessage::CatchupResponse(b) => b.wire_size(),
        }
    }

    /// A content id for gossip dedup.
    pub fn message_id(&self) -> [u8; 32] {
        match self {
            WireMessage::Priority(p) => p.message_id(),
            WireMessage::Block(b) => b.message_id(),
            WireMessage::Vote(v) => v.message_id(),
            WireMessage::ForkProposal(f) => f.message_id(),
            WireMessage::Transaction(t) => sha256_concat(&[b"tx-id", &t.id()]),
            WireMessage::CatchupRequest { have } => {
                sha256_concat(&[b"catchup-req", &have.to_le_bytes()])
            }
            WireMessage::CatchupResponse(b) => b.message_id(),
        }
    }

    /// The per-sender relay slot `(pk, round, step)` for the §8.4
    /// one-message-per-key rule, where applicable.
    ///
    /// The round component is tagged with the message type in its top
    /// byte so that slots of different message kinds can never collide
    /// (a proposer both proposes *and* votes in the same round).
    pub fn relay_slot(&self) -> Option<([u8; 32], u64, u32)> {
        const TAG_VOTE: u64 = 0 << 56;
        const TAG_PRIORITY: u64 = 1 << 56;
        const TAG_FORK: u64 = 2 << 56;
        match self {
            // Priority messages: one per proposer per round.
            WireMessage::Priority(p) => Some((p.sender.to_bytes(), TAG_PRIORITY | p.round, 0)),
            // Blocks are deduplicated by content only; equivocation is
            // detected (and punished by falling back to the empty block)
            // at the proposal layer, not the relay layer.
            WireMessage::Block(_) => None,
            WireMessage::Vote(v) => Some((v.sender.to_bytes(), TAG_VOTE | v.round, v.step.code())),
            WireMessage::ForkProposal(f) => {
                Some((f.sender.to_bytes(), TAG_FORK | f.epoch, f.attempt))
            }
            // Transactions dedup by content; senders may submit many per
            // round.
            WireMessage::Transaction(_) => None,
            // Catch-up traffic dedups by content.
            WireMessage::CatchupRequest { .. } => None,
            WireMessage::CatchupResponse(_) => None,
        }
    }

    /// Appends the canonical wire encoding: a tag byte plus the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireMessage::Priority(p) => {
                out.put_u8(1);
                p.encode(out);
            }
            WireMessage::Block(b) => {
                out.put_u8(2);
                b.encode(out);
            }
            WireMessage::Vote(v) => {
                out.put_u8(3);
                v.encode(out);
            }
            WireMessage::ForkProposal(f) => {
                out.put_u8(4);
                f.encode(out);
            }
            WireMessage::Transaction(t) => {
                out.put_u8(5);
                t.encode(out);
            }
            WireMessage::CatchupRequest { have } => {
                out.put_u8(6);
                out.put_u64(*have);
            }
            WireMessage::CatchupResponse(batch) => {
                out.put_u8(7);
                out.put_u32(batch.entries.len() as u32);
                for (block, cert) in &batch.entries {
                    block.encode(out);
                    cert.encode(out);
                }
            }
        }
    }

    /// The canonical wire encoding as a fresh buffer.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size() + 1);
        self.encode(&mut out);
        out
    }

    /// Decodes any wire message.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unknown tags, truncation, or malformed
    /// payloads. Decoding establishes structure only; cryptographic and
    /// protocol validity are checked by the node's normal processing path.
    pub fn decode(r: &mut Reader<'_>) -> Result<WireMessage, DecodeError> {
        Ok(match r.u8()? {
            1 => WireMessage::Priority(PriorityMessage::decode(r)?),
            2 => WireMessage::Block(BlockMessage::decode(r)?),
            3 => WireMessage::Vote(VoteMessage::decode(r)?),
            4 => WireMessage::ForkProposal(ForkProposalMessage::decode(r)?),
            5 => WireMessage::Transaction(Transaction::decode(r)?),
            6 => WireMessage::CatchupRequest { have: r.u64()? },
            7 => {
                let n = r.u32()? as usize;
                if n > CatchupBatch::MAX_ENTRIES {
                    return Err(DecodeError::Invalid);
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let block = Block::decode(r)?;
                    let cert = Certificate::decode(r)?;
                    entries.push((block, cert));
                }
                WireMessage::CatchupResponse(CatchupBatch { entries })
            }
            _ => return Err(DecodeError::Invalid),
        })
    }
}
