//! The node's wire protocol: everything Algorand gossips.

use crate::proposal::{BlockMessage, PriorityMessage};
use crate::recovery::ForkProposalMessage;
use algorand_ba::{Certificate, VoteMessage};
use algorand_crypto::codec::{DecodeError, Reader, WriteExt};
use algorand_crypto::sha256_concat;
use algorand_ledger::{Block, Transaction};

/// A catch-up response carrying agreed rounds with their certificates
/// (§8.3: certificates let any user validate prior blocks).
#[derive(Clone, Debug)]
pub struct CatchupBatch {
    /// Consecutive `(block, certificate)` pairs starting at the
    /// requester's next round.
    pub entries: Vec<(Block, Certificate)>,
}

impl CatchupBatch {
    /// Upper bound on entries accepted by the decoder.
    pub const MAX_ENTRIES: usize = 1024;

    /// Upper bound on the *bytes* a decoded batch may span (8 MiB).
    ///
    /// `MAX_ENTRIES` alone is no defence for a real socket listener:
    /// 1024 blocks of 16 MiB payload each would commit the decoder to
    /// gigabytes. The serving side sends a few rounds per response, so
    /// any batch wider than this is hostile.
    pub const MAX_WIRE_BYTES: usize = 8 << 20;

    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self
            .entries
            .iter()
            .map(|(b, c)| b.wire_size() + c.wire_size())
            .sum::<usize>()
    }

    /// A content id for gossip dedup. Identical batches served by
    /// different peers deduplicate to one propagation.
    pub fn message_id(&self) -> [u8; 32] {
        let mut parts: Vec<[u8; 32]> = vec![[0xCAu8; 32]];
        for (b, _) in &self.entries {
            parts.push(b.hash());
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| &p[..]).collect();
        sha256_concat(&refs)
    }
}

/// The kind of a wire message, as named by its tag byte — available even
/// when the payload fails to decode, so transport logs can attribute
/// failures to a message kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireKind {
    /// Tag 1: a priority message.
    Priority,
    /// Tag 2: a block message.
    Block,
    /// Tag 3: a BA⋆ vote.
    Vote,
    /// Tag 4: a fork proposal.
    ForkProposal,
    /// Tag 5: a transaction.
    Transaction,
    /// Tag 6: a catch-up request.
    CatchupRequest,
    /// Tag 7: a catch-up response.
    CatchupResponse,
}

impl WireKind {
    /// Maps a tag byte to its kind, if known.
    pub fn from_tag(tag: u8) -> Option<WireKind> {
        Some(match tag {
            1 => WireKind::Priority,
            2 => WireKind::Block,
            3 => WireKind::Vote,
            4 => WireKind::ForkProposal,
            5 => WireKind::Transaction,
            6 => WireKind::CatchupRequest,
            7 => WireKind::CatchupResponse,
            _ => return None,
        })
    }

    /// The kind's wire-log name.
    pub fn name(self) -> &'static str {
        match self {
            WireKind::Priority => "priority",
            WireKind::Block => "block",
            WireKind::Vote => "vote",
            WireKind::ForkProposal => "fork_proposal",
            WireKind::Transaction => "transaction",
            WireKind::CatchupRequest => "catchup_request",
            WireKind::CatchupResponse => "catchup_response",
        }
    }
}

/// A decode failure attributed to the message kind (from the tag byte,
/// when one was readable) and the byte offset the decoder had reached —
/// what a transport needs to log a malformed frame usefully.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireDecodeError {
    /// The kind named by the frame's tag byte, if the tag was readable
    /// and known.
    pub kind: Option<WireKind>,
    /// Bytes consumed before the failure.
    pub offset: usize,
    /// The underlying codec error.
    pub err: DecodeError,
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = self.kind.map_or("unknown", WireKind::name);
        write!(
            f,
            "malformed {kind} message at byte {}: {}",
            self.offset, self.err
        )
    }
}

impl std::error::Error for WireDecodeError {}

/// Any message exchanged over the gossip network.
///
/// Variant sizes range from 16 bytes to whole blocks; messages are wrapped
/// in `Arc` by the transport, so the enum itself is never copied in bulk.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum WireMessage {
    /// A proposer's small priority-and-proof message (§6).
    Priority(PriorityMessage),
    /// A proposer's full block (§6).
    Block(BlockMessage),
    /// A BA⋆ committee vote (§7).
    Vote(VoteMessage),
    /// A recovery fork proposal (§8.2).
    ForkProposal(ForkProposalMessage),
    /// A user-submitted payment looking for a proposer (§4).
    Transaction(Transaction),
    /// "I am at round `have`; please send what I missed" (§8.3 catch-up).
    CatchupRequest {
        /// The requester's current tip round.
        have: u64,
        /// The hash of the requester's tip block. A responder whose
        /// canonical block at `have` differs knows the requester sits on a
        /// tentative fork (§8.2) and serves from the disputed round so the
        /// requester can reorg onto the certified majority chain.
        tip_hash: [u8; 32],
    },
    /// Agreed rounds with certificates, answering a catch-up request.
    CatchupResponse(CatchupBatch),
}

impl WireMessage {
    /// Serialized size in bytes, for bandwidth modelling.
    pub fn wire_size(&self) -> usize {
        match self {
            WireMessage::Priority(_) => PriorityMessage::WIRE_SIZE,
            WireMessage::Block(b) => b.wire_size(),
            WireMessage::Vote(_) => VoteMessage::WIRE_SIZE,
            WireMessage::ForkProposal(f) => f.wire_size(),
            WireMessage::Transaction(_) => Transaction::WIRE_SIZE,
            WireMessage::CatchupRequest { .. } => 48,
            WireMessage::CatchupResponse(b) => b.wire_size(),
        }
    }

    /// A content id for gossip dedup.
    pub fn message_id(&self) -> [u8; 32] {
        match self {
            WireMessage::Priority(p) => p.message_id(),
            WireMessage::Block(b) => b.message_id(),
            WireMessage::Vote(v) => v.message_id(),
            WireMessage::ForkProposal(f) => f.message_id(),
            WireMessage::Transaction(t) => sha256_concat(&[b"tx-id", &t.id()]),
            WireMessage::CatchupRequest { have, tip_hash } => {
                sha256_concat(&[b"catchup-req", &have.to_le_bytes(), tip_hash])
            }
            WireMessage::CatchupResponse(b) => b.message_id(),
        }
    }

    /// The per-sender relay slot `(pk, round, step)` for the §8.4
    /// one-message-per-key rule, where applicable.
    ///
    /// The round component is tagged with the message type in its top
    /// byte so that slots of different message kinds can never collide
    /// (a proposer both proposes *and* votes in the same round).
    pub fn relay_slot(&self) -> Option<([u8; 32], u64, u32)> {
        const TAG_VOTE: u64 = 0 << 56;
        const TAG_PRIORITY: u64 = 1 << 56;
        const TAG_FORK: u64 = 2 << 56;
        match self {
            // Priority messages: one per proposer per round.
            WireMessage::Priority(p) => Some((p.sender.to_bytes(), TAG_PRIORITY | p.round, 0)),
            // Blocks are deduplicated by content only; equivocation is
            // detected (and punished by falling back to the empty block)
            // at the proposal layer, not the relay layer.
            WireMessage::Block(_) => None,
            WireMessage::Vote(v) => Some((v.sender.to_bytes(), TAG_VOTE | v.round, v.step.code())),
            WireMessage::ForkProposal(f) => {
                Some((f.sender.to_bytes(), TAG_FORK | f.epoch, f.attempt))
            }
            // Transactions dedup by content; senders may submit many per
            // round.
            WireMessage::Transaction(_) => None,
            // Catch-up traffic dedups by content.
            WireMessage::CatchupRequest { .. } => None,
            WireMessage::CatchupResponse(_) => None,
        }
    }

    /// Appends the canonical wire encoding: a tag byte plus the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireMessage::Priority(p) => {
                out.put_u8(1);
                p.encode(out);
            }
            WireMessage::Block(b) => {
                out.put_u8(2);
                b.encode(out);
            }
            WireMessage::Vote(v) => {
                out.put_u8(3);
                v.encode(out);
            }
            WireMessage::ForkProposal(f) => {
                out.put_u8(4);
                f.encode(out);
            }
            WireMessage::Transaction(t) => {
                out.put_u8(5);
                t.encode(out);
            }
            WireMessage::CatchupRequest { have, tip_hash } => {
                out.put_u8(6);
                out.put_u64(*have);
                out.put_bytes(tip_hash);
            }
            WireMessage::CatchupResponse(batch) => {
                out.put_u8(7);
                out.put_u32(batch.entries.len() as u32);
                for (block, cert) in &batch.entries {
                    block.encode(out);
                    cert.encode(out);
                }
            }
        }
    }

    /// The canonical wire encoding as a fresh buffer.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size() + 1);
        self.encode(&mut out);
        out
    }

    /// Decodes any wire message.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unknown tags, truncation, or malformed
    /// payloads. Decoding establishes structure only; cryptographic and
    /// protocol validity are checked by the node's normal processing path.
    pub fn decode(r: &mut Reader<'_>) -> Result<WireMessage, DecodeError> {
        Ok(match r.u8()? {
            1 => WireMessage::Priority(PriorityMessage::decode(r)?),
            2 => WireMessage::Block(BlockMessage::decode(r)?),
            3 => WireMessage::Vote(VoteMessage::decode(r)?),
            4 => WireMessage::ForkProposal(ForkProposalMessage::decode(r)?),
            5 => WireMessage::Transaction(Transaction::decode(r)?),
            6 => WireMessage::CatchupRequest {
                have: r.u64()?,
                tip_hash: r.bytes32()?,
            },
            7 => {
                let n = r.u32()? as usize;
                if n > CatchupBatch::MAX_ENTRIES {
                    return Err(DecodeError::Invalid);
                }
                let start = r.offset();
                let mut entries = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let block = Block::decode(r)?;
                    let cert = Certificate::decode(r)?;
                    // Enforced as decoding proceeds, so an oversized batch
                    // is abandoned at the boundary rather than after the
                    // whole allocation is already made.
                    if r.offset() - start > CatchupBatch::MAX_WIRE_BYTES {
                        return Err(DecodeError::Invalid);
                    }
                    entries.push((block, cert));
                }
                WireMessage::CatchupResponse(CatchupBatch { entries })
            }
            _ => return Err(DecodeError::Invalid),
        })
    }

    /// The kind of this message.
    pub fn kind(&self) -> WireKind {
        match self {
            WireMessage::Priority(_) => WireKind::Priority,
            WireMessage::Block(_) => WireKind::Block,
            WireMessage::Vote(_) => WireKind::Vote,
            WireMessage::ForkProposal(_) => WireKind::ForkProposal,
            WireMessage::Transaction(_) => WireKind::Transaction,
            WireMessage::CatchupRequest { .. } => WireKind::CatchupRequest,
            WireMessage::CatchupResponse(_) => WireKind::CatchupResponse,
        }
    }

    /// Decodes one whole frame (a socket transport's unit of delivery),
    /// requiring every byte to be consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireDecodeError`] carrying the message kind named by
    /// the tag byte (when readable) and the byte offset the decoder had
    /// reached, so the failure is attributable in transport logs.
    pub fn decode_frame(bytes: &[u8]) -> Result<WireMessage, WireDecodeError> {
        let kind = bytes.first().and_then(|&t| WireKind::from_tag(t));
        let mut r = Reader::new(bytes);
        let msg = WireMessage::decode(&mut r).map_err(|err| WireDecodeError {
            kind,
            offset: r.offset(),
            err,
        })?;
        let offset = r.offset();
        r.finish()
            .map_err(|err| WireDecodeError { kind, offset, err })?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_ba::StepKind;

    /// An entry whose block carries `payload` filler bytes, certified by
    /// a structurally valid (empty-vote) certificate. Decode-layer tests
    /// only need structure; nothing here is cryptographically checked.
    fn entry(round: u64, payload: usize) -> (Block, Certificate) {
        let mut block = Block::empty(round, [round as u8; 32], &[7u8; 32]);
        block.payload = vec![0xAB; payload];
        let cert = Certificate {
            round,
            step: StepKind::Final,
            value: block.hash(),
            votes: Vec::new(),
        };
        (block, cert)
    }

    #[test]
    fn catchup_batch_roundtrips() {
        let batch = CatchupBatch {
            entries: (1..=3).map(|r| entry(r, 100)).collect(),
        };
        let bytes = WireMessage::CatchupResponse(batch).encoded();
        let decoded = WireMessage::decode_frame(&bytes).expect("valid batch");
        let WireMessage::CatchupResponse(b) = decoded else {
            panic!("wrong kind");
        };
        assert_eq!(b.entries.len(), 3);
        assert_eq!(b.entries[1].0.round, 2);
    }

    #[test]
    fn oversized_catchup_batch_rejected_by_byte_bound() {
        // 9 entries of ~1 MiB each stay far below MAX_ENTRIES but cross
        // the byte bound — the OOM vector a real socket listener faces.
        let batch = CatchupBatch {
            entries: (1..=9).map(|r| entry(r, 1 << 20)).collect(),
        };
        let bytes = WireMessage::CatchupResponse(batch).encoded();
        assert!(bytes.len() > CatchupBatch::MAX_WIRE_BYTES);
        let err = WireMessage::decode_frame(&bytes).expect_err("must reject");
        assert_eq!(err.kind, Some(WireKind::CatchupResponse));
        assert_eq!(err.err, DecodeError::Invalid);
        // The decoder abandons the batch at the entry that crossed the
        // bound, not after consuming the whole input.
        assert!(err.offset <= CatchupBatch::MAX_WIRE_BYTES + (2 << 20));
    }

    #[test]
    fn entry_count_bound_still_enforced() {
        let mut bytes = vec![7u8];
        bytes.extend_from_slice(&(CatchupBatch::MAX_ENTRIES as u32 + 1).to_le_bytes());
        let err = WireMessage::decode_frame(&bytes).expect_err("must reject");
        assert_eq!(err.kind, Some(WireKind::CatchupResponse));
        assert_eq!(err.err, DecodeError::Invalid);
    }

    #[test]
    fn decode_failures_carry_kind_and_offset() {
        // A truncated vote frame: tag byte for Vote, then nothing.
        let err = WireMessage::decode_frame(&[3u8]).expect_err("truncated");
        assert_eq!(err.kind, Some(WireKind::Vote));
        assert_eq!(err.err, DecodeError::UnexpectedEnd);
        assert_eq!(err.offset, 1);
        assert!(err.to_string().contains("vote"));
        // An unknown tag has no kind to attribute.
        let err = WireMessage::decode_frame(&[99u8]).expect_err("bad tag");
        assert_eq!(err.kind, None);
        // Trailing garbage after a valid message is an error too.
        let mut bytes = WireMessage::CatchupRequest {
            have: 5,
            tip_hash: [7u8; 32],
        }
        .encoded();
        bytes.push(0);
        let err = WireMessage::decode_frame(&bytes).expect_err("trailing");
        assert_eq!(err.err, DecodeError::TrailingBytes);
        assert_eq!(err.kind, Some(WireKind::CatchupRequest));
    }
}
