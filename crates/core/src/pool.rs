//! A dependency-free worker pool for the verification stage.
//!
//! Signature and VRF checks are stateless and embarrassingly parallel,
//! but the workspace is offline — no rayon. This pool is plain
//! `std::thread` workers draining a `Mutex<VecDeque>` under a condvar.
//!
//! Jobs only *warm* a shared [`PipelineVerifier`] cache: a worker
//! verifies a message and stores the verdict; it never touches
//! consensus state. Callers later consume the message on their own
//! thread, in their own order, and hit the cache. That split is what
//! keeps the simulator deterministic — thread scheduling can change
//! which worker verifies what, but never the order in which results
//! are *applied*.

use crate::proposal::{BlockMessage, PriorityMessage};
use crate::recovery::ForkProposalMessage;
use crate::verify::PipelineVerifier;
use algorand_ba::{RoundWeights, VoteContext, VoteMessage};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One unit of verification work: a message plus the context to verify
/// it under. Running a job populates the verifier's cache; the result
/// itself is discarded.
///
/// Variant sizes mirror [`WireMessage`](crate::wire::WireMessage)'s:
/// block-bearing jobs dwarf vote jobs, but jobs are built one at a time
/// and moved straight into the queue, never copied in bulk.
#[allow(clippy::large_enum_variant)]
pub enum VerifyJob {
    /// A committee vote with its sortition context.
    Vote {
        msg: VoteMessage,
        ctx: VoteContext,
        weights: Arc<RoundWeights>,
    },
    /// A priority gossip message (§6).
    Priority {
        msg: PriorityMessage,
        seed: [u8; 32],
        weights: Arc<RoundWeights>,
        tau: f64,
    },
    /// A proposed block's sortition attachment (§6).
    Block {
        msg: BlockMessage,
        seed: [u8; 32],
        weights: Arc<RoundWeights>,
        tau: f64,
    },
    /// A fork-recovery proposal (§8.2).
    Fork {
        msg: ForkProposalMessage,
        seed: [u8; 32],
        weights: Arc<RoundWeights>,
        tau: f64,
    },
}

impl VerifyJob {
    fn run(&self, verifier: &PipelineVerifier) {
        match self {
            VerifyJob::Vote { msg, ctx, weights } => {
                verifier.verify_vote(msg, ctx, weights);
            }
            VerifyJob::Priority {
                msg,
                seed,
                weights,
                tau,
            } => {
                verifier.verify_priority(msg, seed, weights, *tau);
            }
            VerifyJob::Block {
                msg,
                seed,
                weights,
                tau,
            } => {
                verifier.verify_block(msg, seed, weights, *tau);
            }
            VerifyJob::Fork {
                msg,
                seed,
                weights,
                tau,
            } => {
                verifier.verify_fork_proposal(msg, seed, weights, *tau);
            }
        }
    }
}

struct PoolState {
    jobs: VecDeque<(Arc<PipelineVerifier>, VerifyJob)>,
    /// Queued plus in-flight jobs; a batch is complete when this hits 0.
    outstanding: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers that jobs arrived (or shutdown).
    work: Condvar,
    /// Signals the submitter that `outstanding` reached 0.
    done: Condvar,
}

/// A fixed-size pool of verification workers.
///
/// With zero workers the pool degrades to running jobs inline on the
/// caller's thread, so `VerifyPool::new(0)` is the serial baseline with
/// identical observable behavior.
pub struct VerifyPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl VerifyPool {
    /// Spawns `workers` verification threads (0 = inline/serial mode).
    pub fn new(workers: usize) -> VerifyPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                outstanding: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        VerifyPool { shared, workers }
    }

    /// Number of worker threads (0 means inline mode).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Verifies a batch against `verifier`'s caches, blocking until
    /// every job has run. Results land in the cache only; the caller
    /// re-requests them (as cache hits) in its own deterministic order.
    pub fn verify_batch(&self, verifier: &Arc<PipelineVerifier>, jobs: Vec<VerifyJob>) {
        if jobs.is_empty() {
            return;
        }
        if self.workers.is_empty() {
            for job in &jobs {
                job.run(verifier);
            }
            return;
        }
        let mut state = self.shared.state.lock().expect("pool poisoned");
        state.outstanding += jobs.len();
        state
            .jobs
            .extend(jobs.into_iter().map(|j| (verifier.clone(), j)));
        self.shared.work.notify_all();
        while state.outstanding > 0 {
            state = self.shared.done.wait(state).expect("pool poisoned");
        }
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("pool poisoned");
    loop {
        match state.jobs.pop_front() {
            Some((verifier, job)) => {
                drop(state);
                job.run(&verifier);
                state = shared.state.lock().expect("pool poisoned");
                state.outstanding -= 1;
                if state.outstanding == 0 {
                    shared.done.notify_all();
                }
            }
            None if state.shutdown => return,
            None => {
                state = shared.work.wait(state).expect("pool poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proposal::proposer_sortition;
    use algorand_crypto::Keypair;

    fn priority_jobs(n: u8) -> (Arc<PipelineVerifier>, Vec<VerifyJob>, Arc<RoundWeights>) {
        let keypairs: Vec<Keypair> = (1..=n).map(|i| Keypair::from_seed([i; 32])).collect();
        let weights = Arc::new(RoundWeights::from_pairs(
            keypairs.iter().map(|kp| (kp.pk, 10u64)),
        ));
        let seed = [5u8; 32];
        let tau = weights.total() as f64;
        let jobs = keypairs
            .iter()
            .map(|kp| {
                let (out, proof, _) =
                    proposer_sortition(kp, &seed, 1, &weights, tau).expect("τ = W selects");
                VerifyJob::Priority {
                    msg: PriorityMessage::sign(kp, 1, out, proof, [1u8; 32]),
                    seed,
                    weights: weights.clone(),
                    tau,
                }
            })
            .collect();
        (Arc::new(PipelineVerifier::new()), jobs, weights)
    }

    #[test]
    fn pooled_batch_matches_inline_batch() {
        let (inline_v, inline_jobs, _) = priority_jobs(6);
        VerifyPool::new(0).verify_batch(&inline_v, inline_jobs);

        let (pooled_v, pooled_jobs, _) = priority_jobs(6);
        let pool = VerifyPool::new(4);
        pool.verify_batch(&pooled_v, pooled_jobs);

        assert_eq!(
            inline_v.unique_proposal_verifications(),
            pooled_v.unique_proposal_verifications()
        );
        assert_eq!(inline_v.cache_misses(), pooled_v.cache_misses());
        assert_eq!(pooled_v.unique_proposal_verifications(), 6);
    }

    #[test]
    fn batches_reuse_the_warm_cache() {
        let (verifier, jobs, _) = priority_jobs(4);
        let again: Vec<VerifyJob> = jobs
            .iter()
            .map(|j| match j {
                VerifyJob::Priority {
                    msg,
                    seed,
                    weights,
                    tau,
                } => VerifyJob::Priority {
                    msg: msg.clone(),
                    seed: *seed,
                    weights: weights.clone(),
                    tau: *tau,
                },
                _ => unreachable!(),
            })
            .collect();
        let pool = VerifyPool::new(2);
        pool.verify_batch(&verifier, jobs);
        assert_eq!(verifier.cache_misses(), 4);
        pool.verify_batch(&verifier, again);
        assert_eq!(verifier.cache_misses(), 4);
        assert_eq!(verifier.cache_hits(), 4);
    }
}
