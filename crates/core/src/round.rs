//! Stage 3 of the staged message pipeline: per-round consensus state.
//!
//! [`RoundContext`] is the working state of the round being agreed on —
//! selection seed, weight snapshot, best proposal, equivocation
//! bookkeeping, and the pre-BA⋆ vote buffer. Its observation methods
//! accept only the `Verified*` wrappers from [`crate::verify`], so the
//! type system guarantees nothing unverified influences a round
//! transition.
//!
//! [`BlockStore`] (block bodies by hash) and [`FutureVotes`] (votes for
//! rounds we have not reached) are the cross-round buffers that used to
//! live loose inside the node.

use crate::proposal::Priority;
use crate::verify::{VerifiedBlock, VerifiedPriority};
use algorand_ba::{Micros, RoundWeights, VoteMessage};
use algorand_ledger::{Block, Blockchain, Transaction};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Per-round working state. Mutation of proposal bookkeeping goes
/// through [`RoundContext::observe_priority`] /
/// [`RoundContext::observe_block`], which require verified inputs.
pub struct RoundContext {
    round: u64,
    seed: [u8; 32],
    weights: Arc<RoundWeights>,
    prev_hash: [u8; 32],
    empty_block: Block,
    empty_hash: [u8; 32],
    /// Best (priority, proposer, block hash) seen so far.
    best: Option<(Priority, [u8; 32], [u8; 32])>,
    /// Proposers caught sending conflicting blocks this round (§10.4's
    /// client-side optimization: discard both versions).
    equivocators: HashSet<[u8; 32]>,
    /// First block hash seen from each proposer.
    proposer_blocks: HashMap<[u8; 32], [u8; 32]>,
    /// Votes received before BA⋆ started.
    vote_buffer: Vec<VoteMessage>,
    started: Micros,
    ba_started: Option<Micros>,
}

/// What [`RoundContext::note_block`] concluded about a block sighting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockSighting {
    /// First block from this proposer: verification is warranted.
    New,
    /// Same block seen again from this proposer: nothing to do.
    Known,
    /// Conflicts with this proposer's earlier block: both discarded.
    Equivocation,
}

impl RoundContext {
    /// Captures the chain-derived context for the next round.
    pub fn new(chain: &Blockchain, now: Micros) -> RoundContext {
        let round = chain.next_round();
        let prev = chain.tip();
        let prev_hash = prev.hash();
        let empty_block = Block::empty(round, prev_hash, &prev.seed);
        let empty_hash = empty_block.hash();
        RoundContext {
            round,
            seed: chain.selection_seed(round),
            weights: Arc::new(chain.weights_for_round(round)),
            prev_hash,
            empty_block,
            empty_hash,
            best: None,
            equivocators: HashSet::new(),
            proposer_blocks: HashMap::new(),
            vote_buffer: Vec::new(),
            started: now,
            ba_started: None,
        }
    }

    /// The round being agreed on.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The sortition seed for this round.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The weight snapshot for this round.
    pub fn weights(&self) -> &Arc<RoundWeights> {
        &self.weights
    }

    /// Hash of the previous block.
    pub fn prev_hash(&self) -> [u8; 32] {
        self.prev_hash
    }

    /// This round's fallback empty block.
    pub fn empty_block(&self) -> &Block {
        &self.empty_block
    }

    /// Hash of the fallback empty block.
    pub fn empty_hash(&self) -> [u8; 32] {
        self.empty_hash
    }

    /// When the round started.
    pub fn started(&self) -> Micros {
        self.started
    }

    /// When BA⋆ started, if it has.
    pub fn ba_started(&self) -> Option<Micros> {
        self.ba_started
    }

    /// Records the BA⋆ start time.
    pub fn set_ba_started(&mut self, now: Micros) {
        self.ba_started = Some(now);
    }

    /// The best (priority, proposer, block hash) observed so far.
    pub fn best(&self) -> Option<&(Priority, [u8; 32], [u8; 32])> {
        self.best.as_ref()
    }

    /// Number of proposers caught equivocating this round.
    pub fn equivocator_count(&self) -> usize {
        self.equivocators.len()
    }

    /// Folds a verified priority message into the proposal race:
    /// equivocation bookkeeping, then an unconditional best-priority
    /// update (§6). Callers gate on the proposal-collection phase.
    pub fn observe_priority(&mut self, vp: &VerifiedPriority) {
        debug_assert_eq!(vp.round(), self.round);
        let sender = vp.sender();
        let block_hash = vp.block_hash();
        // Two different block hashes from one proposer = equivocation.
        match self.proposer_blocks.get(&sender) {
            Some(prev) if *prev != block_hash => {
                self.equivocators.insert(sender);
            }
            None => {
                self.proposer_blocks.insert(sender, block_hash);
            }
            _ => {}
        }
        let priority = vp.priority();
        if self
            .best
            .as_ref()
            .map(|(best, _, _)| priority > *best)
            .unwrap_or(true)
        {
            self.best = Some((priority, sender, block_hash));
        }
    }

    /// Classifies a block sighting *before* verification: repeats and
    /// equivocations are settled on hashes alone (and recorded), so only
    /// a proposer's first block ever reaches the verify stage.
    pub fn note_block(&mut self, proposer: [u8; 32], hash: [u8; 32]) -> BlockSighting {
        match self.proposer_blocks.get(&proposer) {
            Some(prev) if *prev != hash => {
                self.equivocators.insert(proposer);
                BlockSighting::Equivocation
            }
            Some(_) => BlockSighting::Known,
            None => BlockSighting::New,
        }
    }

    /// Folds a verified block into the proposal race. The block also
    /// carries its proposer's priority, covering the case where the
    /// separate priority message was lost; `update_best` is true only
    /// during the proposal-collection phase.
    pub fn observe_block(&mut self, vb: &VerifiedBlock, update_best: bool) {
        debug_assert_eq!(vb.round(), self.round);
        let sender = vb.proposer();
        let hash = vb.hash();
        self.proposer_blocks.insert(sender, hash);
        let priority = vb.priority();
        if update_best
            && self
                .best
                .as_ref()
                .map(|(best, _, _)| priority > *best)
                .unwrap_or(true)
        {
            self.best = Some((priority, sender, hash));
        }
    }

    /// The best proposal's block hash, unless its proposer equivocated
    /// (then the round falls back to the empty block).
    pub fn best_candidate(&self) -> Option<[u8; 32]> {
        match &self.best {
            Some((_, proposer, block_hash)) if !self.equivocators.contains(proposer) => {
                Some(*block_hash)
            }
            _ => None,
        }
    }

    /// Whether a block with this hash is worth relaying (§6): only the
    /// highest-priority proposal propagates.
    pub fn relay_worthy(&self, hash: [u8; 32]) -> bool {
        match &self.best {
            Some((_, _, best_hash)) => *best_hash == hash,
            None => true,
        }
    }

    /// Holds a current-round vote until BA⋆ starts.
    pub fn buffer_vote(&mut self, v: &VoteMessage) {
        self.vote_buffer.push(v.clone());
    }

    /// Pre-loads the buffer (votes that arrived while this round was
    /// still in the future).
    pub fn seed_vote_buffer(&mut self, votes: Vec<VoteMessage>) {
        self.vote_buffer = votes;
    }

    /// Drains the pre-BA⋆ vote buffer for replay.
    pub fn take_vote_buffer(&mut self) -> Vec<VoteMessage> {
        std::mem::take(&mut self.vote_buffer)
    }
}

/// All block bodies seen, by hash — proposal pre-images that a BA⋆
/// decision (or a late-deciding peer's pull) may still need.
#[derive(Default)]
pub struct BlockStore {
    blocks: HashMap<[u8; 32], Block>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> BlockStore {
        BlockStore::default()
    }

    /// Stores a block body under its (precomputed) hash.
    pub fn insert(&mut self, hash: [u8; 32], block: Block) {
        self.blocks.insert(hash, block);
    }

    /// Whether the pre-image of `hash` is available.
    pub fn contains(&self, hash: &[u8; 32]) -> bool {
        self.blocks.contains_key(hash)
    }

    /// The block body for `hash`, if stored.
    pub fn get(&self, hash: &[u8; 32]) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// Transactions of round `completed`'s *losing* proposals, for
    /// reinsertion into the mempool (the replay check against updated
    /// accounts later drops whatever the winner committed).
    pub fn salvage_losing_txs(&self, completed: u64, decided: [u8; 32]) -> Vec<Transaction> {
        self.blocks
            .values()
            .filter(|b| b.round == completed && b.hash() != decided)
            .flat_map(|b| b.txs.iter().cloned())
            .collect()
    }

    /// Drops bodies from rounds at or before `completed`; they can no
    /// longer be decided on.
    pub fn prune_through(&mut self, completed: u64) {
        self.blocks.retain(|_, b| b.round > completed);
    }
}

/// Votes for rounds this node has not reached yet, replayed into the
/// round's vote buffer when the round starts.
///
/// Bounded: a malicious flood of far-future votes must not grow memory
/// without limit, so each round holds at most
/// [`FutureVotes::MAX_PER_ROUND`] votes and the whole buffer at most
/// [`FutureVotes::MAX_TOTAL`]. When the total cap is hit, the
/// oldest-buffered (lowest-numbered) round is evicted wholesale — those
/// votes have waited longest and, if their round is real, the committee
/// will still be re-heard live once the node gets there.
#[derive(Default)]
pub struct FutureVotes {
    by_round: HashMap<u64, Vec<VoteMessage>>,
    total: usize,
}

impl FutureVotes {
    /// Cap on buffered votes for any single future round (a scaled
    /// committee is ≤ ~300 sub-users; 512 leaves slack for per-step
    /// committees across the round).
    pub const MAX_PER_ROUND: usize = 512;
    /// Cap on buffered votes across all future rounds.
    pub const MAX_TOTAL: usize = 1536;

    /// Creates an empty buffer.
    pub fn new() -> FutureVotes {
        FutureVotes::default()
    }

    /// Buffers a vote for a future round. Returns `false` when the vote
    /// was dropped by the per-round cap (the total cap instead evicts
    /// the oldest buffered round to make room).
    pub fn push(&mut self, v: &VoteMessage) -> bool {
        let bucket = self.by_round.entry(v.round).or_default();
        if bucket.len() >= Self::MAX_PER_ROUND {
            return false;
        }
        bucket.push(v.clone());
        self.total += 1;
        while self.total > Self::MAX_TOTAL {
            let oldest = *self
                .by_round
                .keys()
                .min()
                .expect("total > 0 implies a round exists");
            let evicted = self.by_round.remove(&oldest).expect("key just found");
            self.total -= evicted.len();
        }
        true
    }

    /// Removes and returns the votes buffered for `round`.
    pub fn take(&mut self, round: u64) -> Option<Vec<VoteMessage>> {
        let votes = self.by_round.remove(&round)?;
        self.total -= votes.len();
        Some(votes)
    }

    /// Total buffered votes across all rounds.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_ba::StepKind;
    use algorand_crypto::{vrf, Keypair};

    fn vote(round: u64) -> VoteMessage {
        let kp = Keypair::from_seed([7u8; 32]);
        let (sorthash, proof) = vrf::prove(&kp, b"future-votes-test");
        VoteMessage::sign(
            &kp,
            round,
            StepKind::Main(1),
            sorthash,
            proof,
            [0u8; 32],
            [0u8; 32],
        )
    }

    #[test]
    fn per_round_cap_drops_overflow() {
        let mut fv = FutureVotes::new();
        let v = vote(5);
        for _ in 0..FutureVotes::MAX_PER_ROUND {
            assert!(fv.push(&v));
        }
        assert_eq!(fv.len(), FutureVotes::MAX_PER_ROUND);
        assert!(!fv.push(&v), "vote beyond the per-round cap must drop");
        assert_eq!(fv.len(), FutureVotes::MAX_PER_ROUND);
        assert_eq!(
            fv.take(5).map(|v| v.len()),
            Some(FutureVotes::MAX_PER_ROUND)
        );
        assert!(fv.is_empty());
    }

    #[test]
    fn total_cap_evicts_oldest_round() {
        let mut fv = FutureVotes::new();
        for round in [10u64, 11, 12] {
            let v = vote(round);
            for _ in 0..FutureVotes::MAX_PER_ROUND {
                assert!(fv.push(&v));
            }
        }
        assert_eq!(fv.len(), FutureVotes::MAX_TOTAL);
        // One more vote overflows the total cap: the oldest round goes.
        assert!(fv.push(&vote(13)));
        assert!(fv.take(10).is_none(), "oldest round should be evicted");
        assert_eq!(
            fv.len(),
            FutureVotes::MAX_TOTAL - FutureVotes::MAX_PER_ROUND + 1
        );
        assert_eq!(fv.take(13).map(|v| v.len()), Some(1));
    }

    #[test]
    fn take_accounts_for_removed_votes() {
        let mut fv = FutureVotes::new();
        for _ in 0..3 {
            fv.push(&vote(2));
        }
        fv.push(&vote(4));
        assert_eq!(fv.len(), 4);
        assert_eq!(fv.take(2).map(|v| v.len()), Some(3));
        assert_eq!(fv.len(), 1);
        assert!(fv.take(2).is_none());
    }
}
