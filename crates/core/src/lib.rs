//! The Algorand node: the paper's primary contribution assembled.
//!
//! This crate wires the substrates together into a complete user
//! implementation. Message handling is a staged pipeline:
//!
//! * [`ingest`] — stage 1: wire decode (see [`wire`]) and per-round
//!   classification of incoming messages;
//! * [`verify`] — stage 2: stateless signature/VRF verification behind a
//!   process-wide cache, producing type-state `Verified*` wrappers that
//!   are the *only* inputs the consensus stage accepts;
//! * [`round`] — stage 3: the per-round state machine ([`round::RoundContext`])
//!   plus the cross-round buffers (block bodies, future votes);
//! * [`emit`] — stage 4: the single exit point for outbound gossip;
//! * [`pool`] — a dependency-free worker pool that batch-verifies
//!   messages into the stage-2 cache ahead of consumption.
//!
//! Around the pipeline:
//!
//! * [`params`] — the Figure 4 parameter set, plus laptop-scale variants;
//! * [`proposal`] — block proposal with VRF-derived priorities (§6);
//! * [`node`] — the sans-io round loop: propose → wait → BA⋆ → append (§4,
//!   §8);
//! * [`recovery`] — the fork-recovery protocol (§8.2);
//! * [`metrics`] — per-round records and per-stage pipeline counters.
//!
//! A [`Node`] talks to the world exclusively through [`WireMessage`]s and
//! clock ticks, so the same code runs under the discrete-event simulator,
//! the integration tests, and (in principle) a real gossip transport.

pub mod emit;
pub mod ingest;
pub mod metrics;
pub mod node;
pub mod params;
pub mod pool;
pub mod proposal;
pub mod recovery;
pub mod round;
pub mod verify;
pub mod wire;

pub use metrics::{PipelineStats, RoundRecord};
pub use node::Node;
pub use params::AlgorandParams;
pub use pool::{VerifyJob, VerifyPool};
pub use proposal::{BlockMessage, PriorityMessage};
pub use recovery::ForkProposalMessage;
pub use verify::{PipelineVerifier, VerifiedBlock, VerifiedForkProposal, VerifiedPriority};
pub use wire::{CatchupBatch, WireDecodeError, WireKind, WireMessage};
