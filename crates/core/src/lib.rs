//! The Algorand node: the paper's primary contribution assembled.
//!
//! This crate wires the substrates together into a complete user
//! implementation:
//!
//! * [`params`] — the Figure 4 parameter set, plus laptop-scale variants;
//! * [`proposal`] — block proposal with VRF-derived priorities (§6);
//! * [`node`] — the sans-io round loop: propose → wait → BA⋆ → append (§4,
//!   §8);
//! * [`recovery`] — the fork-recovery protocol (§8.2);
//! * [`metrics`] — per-round records behind the evaluation figures.
//!
//! A [`Node`] talks to the world exclusively through [`WireMessage`]s and
//! clock ticks, so the same code runs under the discrete-event simulator,
//! the integration tests, and (in principle) a real gossip transport.

pub mod metrics;
pub mod node;
pub mod params;
pub mod proposal;
pub mod recovery;
pub mod wire;

pub use metrics::RoundRecord;
pub use node::Node;
pub use params::AlgorandParams;
pub use proposal::{BlockMessage, PriorityMessage};
pub use recovery::ForkProposalMessage;
pub use wire::WireMessage;
