//! Stage 4 of the staged message pipeline: emit.
//!
//! Every handler writes its outbound gossip into an [`Outbox`] instead
//! of a bare `Vec`, giving the pipeline one exit point — the driver
//! takes the drained messages and the emit counter ticks in one place.

use crate::wire::WireMessage;
use algorand_ba::VoteMessage;

/// Ordered outbound gossip produced while handling one input (a
/// message, a tick, or a round start).
#[derive(Default)]
pub struct Outbox {
    msgs: Vec<WireMessage>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Queues a message for the driver to transmit.
    pub fn push(&mut self, msg: WireMessage) {
        self.msgs.push(msg);
    }

    /// Queues a consensus vote (the most common emission).
    pub fn vote(&mut self, v: VoteMessage) {
        self.msgs.push(WireMessage::Vote(v));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Surrenders the queued messages, in emission order.
    pub fn into_vec(self) -> Vec<WireMessage> {
        self.msgs
    }
}
