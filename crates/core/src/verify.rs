//! Stage 2 of the staged message pipeline: stateless verification.
//!
//! Everything consensus consumes passes through here exactly once. The
//! stage produces type-state wrappers — [`VerifiedPriority`],
//! [`VerifiedBlock`], [`VerifiedForkProposal`] (and, via the `ba` crate,
//! `VerifiedVote`) — whose constructors are private to this module, so
//! round transitions and the BA⋆ tallies cannot be fed unverified data
//! by construction.
//!
//! The [`PipelineVerifier`] additionally memoizes results process-wide,
//! keyed by `(message id, selection seed)`:
//!
//! * the id commits to every serialized byte of the message (including
//!   signatures and proofs), so a hit is exactly as strong as
//!   re-verifying;
//! * the seed pins the verification context. Sortition verification
//!   depends only on `(message, seed, weights, τ)`; the weight snapshot
//!   and τ are deterministic functions of the same chain prefix the
//!   seed commits to, so binding the seed binds the whole context. A
//!   lookup under any other seed (a diverged fork, a recovery epoch, a
//!   speculative prefetch by the verify pool) simply misses and
//!   re-verifies — a wrong-context warm can waste work but never
//!   change a result.
//!
//! In the simulator, where N nodes observe the same gossiped message,
//! this turns N identical signature + VRF verifications into one.

use crate::proposal::{BlockMessage, Priority, PriorityMessage};
use crate::recovery::ForkProposalMessage;
use algorand_ba::{
    verify_vote_message, CachedVerifier, RoundWeights, VerifiedVote, VoteContext, VoteMessage,
    VoteVerifier,
};
use algorand_ledger::Block;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A priority message that passed signature + proposer-sortition
/// verification. The only constructor is
/// [`PipelineVerifier::verify_priority`].
#[derive(Clone, Debug)]
pub struct VerifiedPriority {
    round: u64,
    sender: [u8; 32],
    block_hash: [u8; 32],
    priority: Priority,
}

impl VerifiedPriority {
    /// The proposal round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The proposer's key bytes.
    pub fn sender(&self) -> [u8; 32] {
        self.sender
    }

    /// The advertised block hash.
    pub fn block_hash(&self) -> [u8; 32] {
        self.block_hash
    }

    /// The verified proposal priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// A block message whose proposer-sortition attachment verified. Block
/// *content* validation (transactions, seed, timestamps) is a separate,
/// stateful concern handled at BA⋆ entry. The only constructor is
/// [`PipelineVerifier::verify_block`].
#[derive(Clone, Debug)]
pub struct VerifiedBlock {
    round: u64,
    proposer: [u8; 32],
    hash: [u8; 32],
    priority: Priority,
}

impl VerifiedBlock {
    /// The proposal round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The proposer's key bytes.
    pub fn proposer(&self) -> [u8; 32] {
        self.proposer
    }

    /// The block hash.
    pub fn hash(&self) -> [u8; 32] {
        self.hash
    }

    /// The verified proposal priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// A fork proposal (§8.2) that passed signature + fork-proposer
/// sortition verification. The only constructor is
/// [`PipelineVerifier::verify_fork_proposal`].
#[derive(Clone, Debug)]
pub struct VerifiedForkProposal {
    epoch: u64,
    attempt: u32,
    priority: Priority,
    block: Block,
}

impl VerifiedForkProposal {
    /// The recovery epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The retry attempt within the epoch.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The verified fork-proposer priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The proposed empty block.
    pub fn block(&self) -> &Block {
        &self.block
    }
}

/// The process-wide verification stage shared by every node (and the
/// verify pool's workers).
///
/// Votes are cached in the wrapped [`CachedVerifier`]; proposal-shaped
/// messages (priorities, blocks, fork proposals) share one map — their
/// ids are domain-separated at construction, so kinds cannot collide.
#[derive(Default)]
pub struct PipelineVerifier {
    votes: CachedVerifier,
    proposals: Mutex<HashMap<VerdictKey, Option<Priority>>>,
    proposal_hits: AtomicU64,
    proposal_misses: AtomicU64,
}

/// A cache key: `(message_id, selection_seed)`.
type VerdictKey = ([u8; 32], [u8; 32]);

impl PipelineVerifier {
    /// Creates an empty verifier/cache.
    pub fn new() -> PipelineVerifier {
        PipelineVerifier::default()
    }

    /// Verifies a vote against `ctx`, producing the type-state wrapper
    /// the BA⋆ engine accepts. Cached.
    pub fn verify_vote(
        &self,
        msg: &VoteMessage,
        ctx: &VoteContext,
        weights: &RoundWeights,
    ) -> Option<VerifiedVote> {
        verify_vote_message(&self.votes, msg, ctx, weights)
    }

    /// Verifies a priority message (§6). Cached.
    pub fn verify_priority(
        &self,
        msg: &PriorityMessage,
        seed: &[u8; 32],
        weights: &RoundWeights,
        tau_proposer: f64,
    ) -> Option<VerifiedPriority> {
        let priority = self.cached_proposal(msg.message_id(), seed, || {
            msg.verify(seed, weights, tau_proposer)
        })?;
        Some(VerifiedPriority {
            round: msg.round,
            sender: msg.sender.to_bytes(),
            block_hash: msg.block_hash,
            priority,
        })
    }

    /// Verifies a block message's proposer-sortition attachment (§6).
    /// Cached.
    pub fn verify_block(
        &self,
        msg: &BlockMessage,
        seed: &[u8; 32],
        weights: &RoundWeights,
        tau_proposer: f64,
    ) -> Option<VerifiedBlock> {
        let proposer = msg.block.proposer.as_ref()?.to_bytes();
        let priority = self.cached_proposal(msg.message_id(), seed, || {
            msg.verify(seed, weights, tau_proposer)
        })?;
        Some(VerifiedBlock {
            round: msg.block.round,
            proposer,
            hash: msg.block.hash(),
            priority,
        })
    }

    /// Verifies a fork proposal against a recovery context (§8.2).
    /// Cached — recovery seeds are epoch/attempt-specific, so entries
    /// never alias across attempts.
    pub fn verify_fork_proposal(
        &self,
        msg: &ForkProposalMessage,
        seed: &[u8; 32],
        weights: &RoundWeights,
        tau_proposer: f64,
    ) -> Option<VerifiedForkProposal> {
        let priority = self.cached_proposal(msg.message_id(), seed, || {
            msg.verify(seed, weights, tau_proposer)
        })?;
        Some(VerifiedForkProposal {
            epoch: msg.epoch,
            attempt: msg.attempt,
            priority,
            block: msg.block.clone(),
        })
    }

    fn cached_proposal(
        &self,
        id: [u8; 32],
        seed: &[u8; 32],
        verify: impl FnOnce() -> Option<Priority>,
    ) -> Option<Priority> {
        let key = (id, *seed);
        if let Some(hit) = self.proposals.lock().expect("cache poisoned").get(&key) {
            self.proposal_hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        self.proposal_misses.fetch_add(1, Ordering::Relaxed);
        let result = verify();
        self.proposals
            .lock()
            .expect("cache poisoned")
            .insert(key, result);
        result
    }

    /// The cached verdict for a vote under `seed`, if any. `Some(None)`
    /// means the vote is known invalid — the relay layer consults this
    /// to stop forwarding junk without re-verifying anything.
    pub fn vote_status(&self, id: [u8; 32], seed: [u8; 32]) -> Option<Option<u64>> {
        self.votes.status(id, seed)
    }

    /// The cached verdict for a proposal-shaped message under `seed`.
    pub fn proposal_status(&self, id: [u8; 32], seed: [u8; 32]) -> Option<Option<Priority>> {
        self.proposals
            .lock()
            .expect("cache poisoned")
            .get(&(id, seed))
            .copied()
    }

    /// Distinct vote verifications performed (CPU-cost proxy).
    pub fn unique_vote_verifications(&self) -> usize {
        self.votes.unique_verifications()
    }

    /// Distinct proposal/block/fork-proposal verifications performed.
    pub fn unique_proposal_verifications(&self) -> usize {
        self.proposals.lock().expect("cache poisoned").len()
    }

    /// Cache hits across both caches.
    pub fn cache_hits(&self) -> u64 {
        self.votes.hits() + self.proposal_hits.load(Ordering::Relaxed)
    }

    /// Cache misses (full verifications) across both caches.
    pub fn cache_misses(&self) -> u64 {
        self.votes.misses() + self.proposal_misses.load(Ordering::Relaxed)
    }

    /// Drops all cached entries.
    pub fn clear(&self) {
        self.votes.clear();
        self.proposals.lock().expect("cache poisoned").clear();
    }
}

impl VoteVerifier for PipelineVerifier {
    fn verify_vote(
        &self,
        msg: &VoteMessage,
        ctx: &VoteContext,
        weights: &RoundWeights,
    ) -> Option<u64> {
        self.votes.verify_vote(msg, ctx, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proposal::proposer_sortition;
    use algorand_crypto::Keypair;

    fn setup() -> (Keypair, RoundWeights, [u8; 32]) {
        let kp = Keypair::from_seed([3u8; 32]);
        let weights = RoundWeights::from_pairs([(kp.pk, 100u64)]);
        (kp, weights, [6u8; 32])
    }

    #[test]
    fn priority_verification_is_cached_and_seed_scoped() {
        let (kp, weights, seed) = setup();
        let (out, proof, priority) =
            proposer_sortition(&kp, &seed, 1, &weights, 100.0).expect("τ = W selects");
        let msg = PriorityMessage::sign(&kp, 1, out, proof, [7u8; 32]);
        let v = PipelineVerifier::new();
        let vp = v
            .verify_priority(&msg, &seed, &weights, 100.0)
            .expect("valid");
        assert_eq!(vp.priority(), priority);
        assert_eq!(vp.block_hash(), [7u8; 32]);
        assert_eq!((v.cache_hits(), v.cache_misses()), (0, 1));
        // Second verification hits the cache.
        v.verify_priority(&msg, &seed, &weights, 100.0)
            .expect("still valid");
        assert_eq!((v.cache_hits(), v.cache_misses()), (1, 1));
        assert_eq!(
            v.proposal_status(msg.message_id(), seed),
            Some(Some(priority))
        );
        // A different seed is a different context: miss, and the message
        // fails to verify there (cached as invalid independently).
        assert!(v
            .verify_priority(&msg, &[9u8; 32], &weights, 100.0)
            .is_none());
        assert_eq!(v.proposal_status(msg.message_id(), [9u8; 32]), Some(None));
        assert_eq!(
            v.proposal_status(msg.message_id(), seed),
            Some(Some(priority))
        );
        assert_eq!(v.unique_proposal_verifications(), 2);
    }
}
