//! Per-round measurements recorded by each node.
//!
//! These are the raw samples behind the paper's evaluation figures: round
//! completion time (Figures 5, 6, 8), the proposal/BA⋆/final-step breakdown
//! (Figure 7), and step-count distributions (§7's efficiency claims).

use algorand_ba::{ConsensusKind, Micros};

/// One node's record of one completed round.
#[derive(Clone, Copy, Debug)]
pub struct RoundRecord {
    /// The round number.
    pub round: u64,
    /// When this node began the round (started waiting for proposals).
    pub started: Micros,
    /// When this node handed a block to BA⋆ (end of block proposal).
    pub ba_started: Micros,
    /// When BinaryBA⋆ concluded (before the final count).
    pub binary_done: Micros,
    /// When the round completed (block appended).
    pub finished: Micros,
    /// Final or tentative.
    pub kind: ConsensusKind,
    /// The BinaryBA⋆ step at which agreement was reached.
    pub binary_step: u32,
    /// True if the round agreed on the empty block.
    pub empty: bool,
    /// Serialized size of the agreed block.
    pub block_bytes: usize,
}

impl RoundRecord {
    /// Total round latency for this node.
    pub fn total(&self) -> Micros {
        self.finished - self.started
    }

    /// Time spent in block proposal (waiting for priorities and the block).
    pub fn proposal_time(&self) -> Micros {
        self.ba_started - self.started
    }

    /// Time spent in BA⋆ before the final step.
    pub fn ba_without_final(&self) -> Micros {
        self.binary_done.saturating_sub(self.ba_started)
    }

    /// Time spent in BA⋆'s final step.
    pub fn final_step_time(&self) -> Micros {
        self.finished.saturating_sub(self.binary_done)
    }
}

/// Per-node counters for the staged message pipeline, one tick per
/// message per stage (ingest → verify → consume → emit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Messages entering the ingest stage (decoded deliveries).
    pub ingested: u64,
    /// Dropped by ingest: wrong round, wrong phase, or stale.
    pub rejected_ingest: u64,
    /// Current-round votes buffered because BA⋆ has not started.
    pub buffered_early: u64,
    /// Votes buffered for a near-future round.
    pub buffered_future: u64,
    /// Messages that passed the verification stage.
    pub verified: u64,
    /// Messages the verification stage rejected.
    pub rejected_verify: u64,
    /// Gossip messages handed back to the driver by the emit stage.
    pub emitted: u64,
}

impl PipelineStats {
    /// Adds another node's counters into this one (fleet aggregation).
    pub fn merge(&mut self, other: &PipelineStats) {
        self.ingested += other.ingested;
        self.rejected_ingest += other.rejected_ingest;
        self.buffered_early += other.buffered_early;
        self.buffered_future += other.buffered_future;
        self.verified += other.verified;
        self.rejected_verify += other.rejected_verify;
        self.emitted += other.emitted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_stats_merge_sums_fields() {
        let mut a = PipelineStats {
            ingested: 10,
            rejected_ingest: 1,
            buffered_early: 2,
            buffered_future: 3,
            verified: 4,
            rejected_verify: 5,
            emitted: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.ingested, 20);
        assert_eq!(a.rejected_verify, 10);
        assert_eq!(a.emitted, 12);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let r = RoundRecord {
            round: 1,
            started: 100,
            ba_started: 300,
            binary_done: 900,
            finished: 1000,
            kind: ConsensusKind::Final,
            binary_step: 1,
            empty: false,
            block_bytes: 1 << 20,
        };
        assert_eq!(r.total(), 900);
        assert_eq!(r.proposal_time(), 200);
        assert_eq!(r.ba_without_final(), 600);
        assert_eq!(r.final_step_time(), 100);
        assert_eq!(
            r.proposal_time() + r.ba_without_final() + r.final_step_time(),
            r.total()
        );
    }
}
