//! # algorand — a reproduction of *Algorand: Scaling Byzantine Agreements
//! # for Cryptocurrencies* (SOSP 2017)
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`crypto`] — from-scratch SHA-256, Curve25519, Schnorr signatures,
//!   and the ECVRF behind cryptographic sortition;
//! * [`sortition`] — Algorithms 1–2 and the Figure 3 committee-size
//!   analysis;
//! * [`ba`] — the BA⋆ Byzantine agreement engine (Algorithms 3–9);
//! * [`ledger`] — transactions, accounts, blocks, seeds, chains, and
//!   certificates;
//! * [`gossip`] — topology and relay policy;
//! * [`txpool`] — the mempool: nonce-ordered, size-bounded pending
//!   transactions between gossip and block assembly;
//! * [`core`] — the full Algorand node (block proposal, round loop, fork
//!   recovery);
//! * [`sim`] — the discrete-event deployment simulator standing in for the
//!   paper's 1,000-VM testbed.
//!
//! # Quick start
//!
//! ```
//! use algorand::sim::{SimConfig, Simulation};
//!
//! // Simulate 12 equal-stake users for one round of consensus.
//! let mut sim = Simulation::new(SimConfig::new(12));
//! sim.run_rounds(1, 10 * 60 * 1_000_000);
//! let stats = sim.round_stats(1).expect("round completed");
//! assert!(stats.completion.max < 60.0, "sub-minute confirmation");
//! ```

pub use algorand_ba as ba;
pub use algorand_core as core;
pub use algorand_crypto as crypto;
pub use algorand_gossip as gossip;
pub use algorand_ledger as ledger;
pub use algorand_sim as sim;
pub use algorand_sortition as sortition;
pub use algorand_txpool as txpool;
