#!/usr/bin/env bash
# CI gate for the repository. Fully offline; no network access needed.
#
#   1. tier-1 gate: release build + facade test suite (the invariant
#      every PR must keep green),
#   2. the full workspace test suite (every crate's unit, integration
#      and doc tests),
#   3. a 50-user / 200-transaction end-to-end smoke simulation that
#      fails unless >=95% of injected transactions finalize, each
#      exactly once (see crates/bench/src/bin/txpool_smoke.rs),
#   4. the chaos suite (fixed seeds) plus a determinism check: every
#      scripted fault schedule is run twice and must produce identical
#      final-chain digests and recover within its horizon (see
#      crates/bench/src/bin/chaos_determinism.rs),
#   5. the trace-determinism gate: the same seed traced twice must
#      export byte-identical trace JSONL (with zero dropped events),
#      and tracing on/off must not change the chain digest (see
#      crates/bench/src/bin/trace_report.rs),
#   6. the causal-profiler gate: the critical-path report renders
#      byte-identically across reruns, every chain is contiguous, and
#      every finalized round's chain explains >=95% of its measured
#      latency (see crates/bench/src/bin/critical_path.rs),
#   7. the invariant monitor: all chaos schedules run with the online
#      monitor attached and must report zero violations (asserted
#      inside the chaos suite of step 4), while the violation-injection
#      self-test must flag every seeded violation class (see
#      crates/sim/tests/monitor.rs),
#   8. the localnet gate: five real `algorand-node` processes over
#      loopback TCP must finalize the exact chain digest the simulator
#      produces for the same seed, and a kill -9'd process must rejoin
#      via WAL replay plus blocksync; mid-run, every process must answer
#      a TELEMETRY scrape with a clean in-process monitor verdict and
#      non-zero transport/WAL/pipeline counters (the merged report lands
#      in results/cluster_health.txt), and the SIGKILL'd process must
#      leave no crash.jsonl; the same run drains every process's trace
#      buffer over TRACE_DRAIN, merges them into one causal cluster
#      trace (results/cluster_trace.{jsonl,txt}), and requires the
#      merged critical path to explain >=90% of each finalized round
#      with at least one cross-process chain (see
#      crates/bench/src/bin/{localnet,trace_collect}.rs),
#   8b. the telemetry-smoke gate: two TELEMETRY scrapes of an idle node
#      must return byte-identical exposition text, its flight-recorder
#      dump must parse as ordinary trace JSONL, and a connection
#      hammering past the configured burst must get TEL_THROTTLED
#      error frames while fresh connections stay served (see
#      crates/bench/src/bin/telemetry_smoke.rs),
#   8c. the cluster-trace gate: the merged artifact the localnet run
#      archived must re-parse, re-render byte-identically, and pass the
#      merged critical-path checks offline (see
#      crates/bench/src/bin/critical_path.rs, --trace mode),
#   9. the parallel-engine determinism gate: every chaos scenario run
#      on the discrete-event engine at 1, 2, and 4 workers must yield
#      byte-identical chain digests, monitor verdicts, and trace JSONL
#      (see crates/bench/src/bin/des_determinism.rs),
#  10. the scale gate: 1,000 real protocol nodes must finalize >=5
#      rounds in the CI wall-clock budget, with identical digests at
#      1 and 4 workers and the parallel engine at least as fast as the
#      legacy event loop; numbers land in results/scale.txt (see
#      crates/bench/src/bin/scale_smoke.rs),
#  11. the epidemic-validation gate: the analytic large-scale model must
#      agree with the real engine at 100-1,000 users within a factor
#      band; the table lands in results/epidemic_vs_des.txt (see
#      crates/bench/src/bin/epidemic_vs_des.rs),
#  12. the schedule-space fuzzing gate: 1,000 generated (seed, schedule)
#      pairs must pass every oracle on the honest build, the whole
#      campaign report must be byte-identical when re-run, and a planted
#      catch-up defect must be caught and shrunk to a <=8-event
#      reproducer that replays deterministically (see
#      crates/bench/src/bin/fuzz_campaign.rs); the archived corpus under
#      crates/sim/tests/corpus/ must replay with its recorded verdicts
#      and the shrinker property test must hold (see
#      crates/sim/tests/{corpus,fuzz}.rs),
#  13. style gates: rustfmt and clippy with warnings denied.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== style: cargo fmt --check =="
cargo fmt --check

echo "== style: cargo clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== txpool smoke simulation =="
cargo run --release -p algorand-bench --bin txpool_smoke

echo "== chaos suite (fixed seeds) =="
cargo test --release -q -p algorand-sim --test chaos

echo "== chaos determinism + recovery check =="
cargo run --release -p algorand-bench --bin chaos_determinism

echo "== trace determinism gate =="
cargo run --release -p algorand-bench --bin trace_report -- --check

echo "== causal critical-path gate =="
cargo run --release -p algorand-bench --bin critical_path -- --check

echo "== invariant monitor: baseline + violation-injection self-test =="
cargo test --release -q -p algorand-sim --test monitor

echo "== localnet: 5 real processes vs simulator digest, kill -9 rejoin, live scrape + trace drain =="
cargo build --release -q -p algorand-node
cargo build --release -q -p algorand-bench --bin trace_collect
cargo run --release -p algorand-bench --bin localnet

echo "== telemetry smoke: idle-node scrapes byte-identical, flight dump parses, throttle trips =="
cargo run --release -p algorand-bench --bin telemetry_smoke

echo "== cluster trace: merged artifact re-checks offline =="
cargo run --release -p algorand-bench --bin critical_path -- --trace results/cluster_trace.jsonl --check

echo "== parallel engine: worker-count determinism gate =="
cargo run --release -p algorand-bench --bin des_determinism

echo "== parallel engine: 1000-node scale smoke =="
cargo run --release -p algorand-bench --bin scale_smoke

echo "== epidemic model vs real engine (100-1000 users) =="
cargo run --release -p algorand-bench --bin epidemic_vs_des

echo "== schedule-space fuzzer: 1000-case campaign + determinism + bug-injection =="
cargo run --release -p algorand-bench --bin fuzz_campaign -- --budget 1000 --seed 42 --check

echo "== fuzz corpus replay + shrinker property test =="
cargo test --release -q -p algorand-sim --test corpus --test fuzz -- --include-ignored

echo "== CI OK =="
