//! End-to-end transaction-pool test: an open-loop payment workload over a
//! 50-user network must land in finalized blocks exactly once, in
//! per-sender nonce order, with high delivery and measurable latency.

use algorand::sim::{SimConfig, Simulation};
use std::collections::HashMap;

const T_CAP: u64 = 30 * 60 * 1_000_000;

#[test]
fn injected_transactions_finalize_exactly_once_in_nonce_order() {
    let mut cfg = SimConfig::new(50);
    cfg.stake_per_user = 50; // Enough spendable stake for the whole run.
    cfg.tx_rate = 25.0; // Open loop: 25 tx/s for 20 virtual seconds.
    cfg.tx_total = 500;
    cfg.seed = 11;
    let mut sim = Simulation::new(cfg);
    // Rounds complete every few virtual seconds; 15 rounds covers the whole
    // injection window plus a finalization tail for the stragglers.
    sim.run_rounds(15, T_CAP);

    let stats = sim.tx_stats().expect("workload ran");
    assert_eq!(stats.injected, 500, "full workload injected");
    assert!(
        stats.committed as f64 >= 0.95 * stats.injected as f64,
        "only {}/{} transactions committed",
        stats.committed,
        stats.injected
    );
    assert_eq!(stats.duplicate_commits, 0, "a transaction committed twice");
    let latency = stats.latency.expect("committed transactions have latency");
    assert!(
        latency.median > 0.0 && latency.p99 >= latency.median,
        "latency percentiles inconsistent: {latency:?}"
    );
    assert!(stats.tx_per_sec > 0.0);

    // Cross-check the chain directly on every honest node: each injected
    // transaction appears at most once, and each sender's committed
    // nonces are exactly 1, 2, 3, ... in chain order.
    let injected: HashMap<[u8; 32], usize> = sim
        .injected_txs()
        .iter()
        .map(|r| (r.id, r.sender))
        .collect();
    for node_idx in 0..50 {
        let chain = sim.honest_node(node_idx).chain();
        let mut seen = HashMap::new();
        let mut next_nonce: HashMap<[u8; 32], u64> = HashMap::new();
        for round in 1..=chain.tip().round {
            let Some(block) = chain.block_at(round) else {
                continue;
            };
            for tx in &block.txs {
                assert!(
                    injected.contains_key(&tx.id()),
                    "node {node_idx}: unknown transaction in a block"
                );
                assert!(
                    seen.insert(tx.id(), round).is_none(),
                    "node {node_idx}: transaction committed twice"
                );
                let counter = next_nonce.entry(tx.from.to_bytes()).or_insert(0);
                *counter += 1;
                assert_eq!(
                    tx.nonce, *counter,
                    "node {node_idx}: sender nonces out of order at round {round}"
                );
            }
        }
    }
}
