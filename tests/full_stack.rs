//! Cross-crate integration: a simulated deployment feeding bootstrap,
//! seed-chain verification, and storage accounting — the full paper
//! pipeline through the public facade API.

use algorand::ba::RealVerifier;
use algorand::ledger::seed::{fallback_seed, verify_seed_proposal};
use algorand::ledger::{Blockchain, Transaction};
use algorand::sim::{SimConfig, Simulation};

const T_CAP: u64 = 30 * 60 * 1_000_000;

fn run(n: usize, rounds: u64, seed: u64) -> Simulation {
    let mut cfg = SimConfig::new(n);
    cfg.seed = seed;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(rounds, T_CAP);
    sim
}

#[test]
fn seeds_in_agreed_blocks_verify() {
    // §5.2: every non-empty block's seed is a VRF of the previous seed and
    // round under the proposer's key; empty blocks use the hash fallback.
    let sim = run(16, 3, 21);
    let chain = sim.honest_node(0).chain();
    for r in 1..=chain.tip().round {
        let block = chain.block_at(r).expect("canonical");
        let prev = chain.block_at(r - 1).expect("canonical");
        match (&block.proposer, &block.seed_proof) {
            (Some(pk), Some(proof)) => {
                let certified =
                    verify_seed_proposal(pk, proof, &prev.seed, r).expect("seed must verify");
                assert_eq!(certified, block.seed, "round {r}");
            }
            (None, None) => {
                assert_eq!(block.seed, fallback_seed(&prev.seed, r), "round {r}");
            }
            _ => panic!("round {r}: inconsistent proposer/seed fields"),
        }
    }
}

#[test]
fn bootstrap_from_simulated_history_reaches_same_state() {
    let mut cfg = SimConfig::new(18);
    cfg.seed = 22;
    let mut sim = Simulation::new(cfg.clone());
    let tx = Transaction::payment(sim.keypair(2), sim.keypair(3).pk, 5, 1);
    let tx_id = tx.id();
    for i in 0..18 {
        sim.submit_transaction(i, tx.clone());
    }
    sim.run_rounds(3, T_CAP);

    let veteran = sim.honest_node(1).chain();
    let history: Vec<_> = (1..=veteran.tip().round)
        .map(|r| {
            (
                veteran.block_at(r).unwrap().clone(),
                veteran.certificate_at(r).unwrap().clone(),
            )
        })
        .collect();
    let alloc: Vec<_> = (0..18)
        .map(|i| (sim.keypair(i).pk, cfg.stake_per_user))
        .collect();
    let newcomer = Blockchain::bootstrap(
        cfg.params.chain,
        alloc,
        [0x47u8; 32],
        &history,
        &cfg.params.ba,
        &RealVerifier,
        sim.now(),
    )
    .expect("honest history validates");
    assert_eq!(newcomer.tip_hash(), veteran.tip_hash());
    assert_eq!(
        newcomer.confirmed_round(&tx_id),
        veteran.confirmed_round(&tx_id)
    );
    assert_eq!(
        newcomer.accounts().balance(&sim.keypair(3).pk),
        veteran.accounts().balance(&sim.keypair(3).pk)
    );
}

#[test]
fn money_is_conserved_across_the_network() {
    let mut cfg = SimConfig::new(15);
    cfg.seed = 23;
    let total_before = cfg.stake_per_user * 15;
    let mut sim = Simulation::new(cfg);
    // A burst of payments among users.
    for i in 0..5usize {
        let tx = Transaction::payment(sim.keypair(i), sim.keypair(i + 5).pk, 3, 1);
        for entry in 0..15 {
            sim.submit_transaction(entry, tx.clone());
        }
    }
    sim.run_rounds(3, T_CAP);
    for i in 0..15 {
        assert_eq!(
            sim.honest_node(i).chain().accounts().total(),
            total_before,
            "node {i} leaked or minted money"
        );
    }
}

#[test]
fn certificates_match_committee_thresholds() {
    let sim = run(16, 2, 24);
    let cfg = sim.config();
    let chain = sim.honest_node(0).chain();
    for r in 1..=chain.tip().round {
        let cert = chain.certificate_at(r).expect("certificate stored");
        assert_eq!(cert.value, chain.block_at(r).unwrap().hash());
        // Validate against the same context a bootstrapper would use.
        let seed = chain.selection_seed(r);
        let weights = chain.weights_for_round(r);
        let prev_hash = chain.block_at(r - 1).unwrap().hash();
        cert.validate(&cfg.params.ba, &seed, &prev_hash, &weights, &RealVerifier)
            .unwrap_or_else(|e| panic!("round {r} certificate invalid: {e}"));
    }
}

#[test]
fn sharded_storage_splits_costs() {
    let sim = run(12, 3, 25);
    let node = sim.honest_node(0);
    let chain = node.chain();
    let full = chain.sharded_storage_bytes(&node.public_key(), 1);
    let mut shard_sum = 0usize;
    for i in 0..12 {
        let peer = sim.honest_node(i);
        shard_sum += peer.chain().sharded_storage_bytes(&peer.public_key(), 4);
    }
    // Average sharded load is roughly full/4 per node.
    let avg = shard_sum / 12;
    assert!(avg < full, "sharding must reduce per-node storage");
}

#[test]
fn facade_reexports_are_coherent() {
    // The facade's types are the workspace's types (no version splits).
    let kp = algorand::crypto::Keypair::from_seed([9u8; 32]);
    let sig = algorand::crypto::sig::sign(&kp, b"x");
    assert!(algorand::crypto::sig::verify(&kp.pk, b"x", &sig).is_ok());
    let params = algorand::core::AlgorandParams::paper();
    assert_eq!(params.ba.tau_step, 2000.0);
    let topo = algorand::gossip::Topology::random(
        50,
        4,
        &mut algorand::crypto::rng::Rng::seed_from_u64(1),
    );
    assert!(topo.largest_component() >= 49);
}
