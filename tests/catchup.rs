//! Regression tests for the catch-up protocol (§8.3).
//!
//! A lagging user requests `(block, certificate)` pairs from peers and
//! validates each certificate against its own chain context before
//! appending. These tests cover the adversarial and lossy cases: batches
//! mixing valid, stale, and non-consecutive entries; a forged
//! certificate in the middle of a batch; and partial application across
//! successive request/response exchanges when the server caps rounds per
//! response.

use algorand::ba::Certificate;
use algorand::core::wire::{CatchupBatch, WireMessage};
use algorand::core::{Node, PipelineVerifier};
use algorand::ledger::{Block, Blockchain};
use algorand::sim::{SimConfig, Simulation};
use std::sync::Arc;

const T_CAP: u64 = 30 * 60 * 1_000_000;

/// Runs a small network for `rounds` rounds and returns the simulation
/// plus the canonical `(block, certificate)` history from node 0.
fn history(rounds: u64) -> (Simulation, Vec<(Block, Certificate)>) {
    let mut cfg = SimConfig::new(16);
    cfg.seed = 33;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(rounds, T_CAP);
    let chain = sim.honest_node(0).chain();
    let entries: Vec<_> = (1..=chain.tip().round)
        .map(|r| {
            (
                chain.block_at(r).expect("canonical block").clone(),
                chain.certificate_at(r).expect("canonical cert").clone(),
            )
        })
        .collect();
    (sim, entries)
}

/// A fresh node at genesis sharing the simulation's allocation, so the
/// simulated history validates against its chain context.
fn fresh_node(sim: &Simulation) -> Node {
    let cfg = SimConfig::new(16);
    let alloc: Vec<_> = (0..16)
        .map(|i| (sim.keypair(i).pk, cfg.stake_per_user))
        .collect();
    let chain = Blockchain::new(cfg.params.chain, alloc.iter().copied(), [0x47u8; 32]);
    let mut node = Node::new(
        sim.keypair(0).clone(),
        chain,
        cfg.params,
        Arc::new(PipelineVerifier::new()),
    );
    node.start(0);
    node
}

fn respond(entries: &[(Block, Certificate)]) -> WireMessage {
    WireMessage::CatchupResponse(CatchupBatch {
        entries: entries.to_vec(),
    })
}

#[test]
fn mixed_valid_and_stale_entries_apply_the_valid_ones() {
    let (sim, entries) = history(5);
    assert!(entries.len() >= 5, "need a round beyond the applied prefix");
    let mut node = fresh_node(&sim);

    // First exchange brings the node to round 1.
    node.on_message(&respond(&entries[..1]), 1);
    assert_eq!(node.chain().tip().round, 1);

    // Second batch interleaves a stale round 1, the valid rounds 2 and 3,
    // and a non-consecutive future round: only 2 and 3 may apply.
    let mixed = vec![
        entries[0].clone(),                 // stale: already on chain
        entries[1].clone(),                 // valid: round 2
        entries[0].clone(),                 // stale again, mid-batch
        entries[2].clone(),                 // valid: round 3
        entries[entries.len() - 1].clone(), // gap: skips a round
    ];
    node.on_message(
        &WireMessage::CatchupResponse(CatchupBatch { entries: mixed }),
        2,
    );

    assert_eq!(node.chain().tip().round, 3, "valid prefix applied");
    assert_eq!(node.catchups_applied(), 3);
    let donor = sim.honest_node(0).chain();
    for r in 1..=3 {
        assert_eq!(
            node.chain().block_at(r).unwrap().hash(),
            donor.block_at(r).unwrap().hash(),
            "round {r} matches the donor chain"
        );
    }
}

#[test]
fn forged_certificate_mid_batch_stops_application() {
    let (sim, entries) = history(4);
    assert!(entries.len() >= 3);
    let mut node = fresh_node(&sim);

    // Forge round 2's certificate: strip its votes below the threshold.
    // The round/value fields still match the block, so the batch passes
    // the cheap consistency checks and fails only inside
    // `Certificate::validate`.
    let mut forged = entries[1].clone();
    forged.1.votes.truncate(1);

    let batch = vec![entries[0].clone(), forged, entries[2].clone()];
    node.on_message(
        &WireMessage::CatchupResponse(CatchupBatch { entries: batch }),
        1,
    );

    // The valid prefix lands; the forged entry aborts the rest — round 3
    // must NOT be appended even though its own certificate is genuine
    // (appending it would leave a hole in the chain).
    assert_eq!(node.chain().tip().round, 1, "application stops at forgery");
    assert_eq!(node.catchups_applied(), 1);

    // The same rounds re-served honestly still apply: the forgery did not
    // poison any state.
    node.on_message(&respond(&entries[1..3]), 2);
    assert_eq!(node.chain().tip().round, 3);
    assert_eq!(node.catchups_applied(), 3);
}

#[test]
fn partial_application_resumes_on_next_request() {
    // Enough history that one capped response cannot cover it.
    let (sim, entries) = history(7);
    let tip = entries.len() as u64;
    assert!(tip >= 6, "need more rounds than one response carries");

    // A server brought up to the full history via one (uncapped) apply.
    let mut server = fresh_node(&sim);
    server.on_message(&respond(&entries), 1);
    assert_eq!(server.chain().tip().round, tip);

    let mut behind = fresh_node(&sim);
    let mut exchanges = 0;
    while behind.chain().tip().round < tip {
        let have = behind.chain().tip().round;
        let tip_hash = behind.chain().tip_hash();
        let out = server.on_message(&WireMessage::CatchupRequest { have, tip_hash }, 2);
        let response = out
            .iter()
            .find(|m| matches!(m, WireMessage::CatchupResponse(_)))
            .expect("server behind a request must respond");
        if let WireMessage::CatchupResponse(b) = response {
            assert!(b.entries.len() <= 4, "responses are capped to a few rounds");
            assert_eq!(
                b.entries[0].0.round,
                have + 1,
                "each response resumes at the requester's next round"
            );
        }
        behind.on_message(response, 3);
        assert!(
            behind.chain().tip().round > have,
            "every exchange makes progress"
        );
        exchanges += 1;
    }
    assert!(exchanges >= 2, "catch-up took multiple request cycles");
    assert_eq!(behind.catchups_applied() as u64, tip);
    assert_eq!(
        behind.chain().tip_hash(),
        sim.honest_node(0).chain().tip_hash(),
        "caught-up chain converges with the network"
    );
}

#[test]
fn tentative_fork_reorgs_onto_longer_certified_chain() {
    // §8.2: a partition can leave a minority tentatively holding a round-2
    // block the rest of the network never adopted. The minority's catch-up
    // request advertises its tip hash; the server spots the mismatch,
    // serves from the disputed round, and the minority rolls its tentative
    // suffix back to adopt the longer certified chain.
    let (sim, entries) = history(4);
    assert!(entries.len() >= 4);

    // Victim chain: the canonical round 1, then a *divergent* tentative
    // round 2 (a competing proposal the majority never certified).
    let cfg = SimConfig::new(16);
    let alloc: Vec<_> = (0..16)
        .map(|i| (sim.keypair(i).pk, cfg.stake_per_user))
        .collect();
    let mut chain = Blockchain::new(cfg.params.chain, alloc.iter().copied(), [0x47u8; 32]);
    let canon_ts = entries[0].0.timestamp;
    chain
        .append(
            entries[0].0.clone(),
            Some(entries[0].1.clone()),
            false,
            canon_ts,
        )
        .unwrap();
    let proposer = sim.keypair(3);
    let prev = chain.tip().clone();
    let (seed, proof) = algorand::ledger::seed::propose_seed(proposer, &prev.seed, 2);
    let divergent = Block {
        round: 2,
        prev_hash: prev.hash(),
        seed,
        seed_proof: Some(proof),
        proposer: Some(proposer.pk),
        timestamp: entries[1].0.timestamp,
        txs: Vec::new(),
        payload: Vec::new(),
    };
    assert_ne!(divergent.hash(), entries[1].0.hash());
    chain
        .append(divergent, None, false, entries[1].0.timestamp)
        .unwrap();
    let mut victim = Node::new(
        sim.keypair(0).clone(),
        chain,
        cfg.params,
        Arc::new(PipelineVerifier::new()),
    );
    victim.start(0);
    assert_eq!(victim.chain().tip().round, 2);

    // A server on the canonical chain sees the hash mismatch and serves
    // from the disputed round instead of round 3.
    let mut server = fresh_node(&sim);
    server.on_message(&respond(&entries), 1);
    let out = server.on_message(
        &WireMessage::CatchupRequest {
            have: 2,
            tip_hash: victim.chain().tip_hash(),
        },
        2,
    );
    let response = out
        .iter()
        .find(|m| matches!(m, WireMessage::CatchupResponse(_)))
        .expect("a forked requester must get a repair batch");
    if let WireMessage::CatchupResponse(b) = response {
        assert_eq!(
            b.entries[0].0.round, 2,
            "repair batches start at the disputed round"
        );
    }

    victim.on_message(response, 3);
    assert_eq!(
        victim.catchup_reorgs(),
        1,
        "the tentative fork was rolled back"
    );
    assert_eq!(victim.chain().tip().round, entries.len() as u64);
    assert_eq!(
        victim.chain().tip_hash(),
        sim.honest_node(0).chain().tip_hash(),
        "the victim converges onto the certified majority chain"
    );

    // An equal-length chain must never displace ours: re-serving only the
    // already-held rounds cannot reorg again (no ping-pong between forks).
    victim.on_message(&respond(&entries), 4);
    assert_eq!(victim.catchup_reorgs(), 1);
}
