//! Randomized property tests over the ledger and consensus invariants,
//! driven by the in-repo deterministic RNG so failures replay exactly.

use algorand::ba::RoundWeights;
use algorand::crypto::rng::Rng;
use algorand::crypto::Keypair;
use algorand::ledger::codec::Reader;
use algorand::ledger::seed::{fallback_seed, propose_seed, verify_seed_proposal};
use algorand::ledger::{Accounts, Block, Transaction};
use algorand::sortition::{binomial::binomial_pmf, sub_users_selected};
use algorand_crypto::vrf::VrfOutput;

const CASES: usize = 16;

fn rng(test_tag: u64) -> Rng {
    Rng::seed_from_u64(0x1ED6E2 ^ test_tag)
}

// --- Conservation under arbitrary payment sequences -------------------------

#[test]
fn random_payment_sequences_conserve_money() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let n = 3 + rng.gen_range_usize(3);
        let balances: Vec<u64> = (0..n).map(|_| 1 + rng.gen_range_u64(999)).collect();
        let keypairs: Vec<Keypair> = (0..n)
            .map(|i| Keypair::from_seed([i as u8 + 1; 32]))
            .collect();
        let mut accounts =
            Accounts::genesis(keypairs.iter().zip(&balances).map(|(k, b)| (k.pk, *b)));
        let total: u64 = balances.iter().sum();
        let mut nonces = vec![0u64; n];
        let ops = rng.gen_range_usize(24);
        for _ in 0..ops {
            let from = rng.gen_range_usize(n);
            let to = rng.gen_range_usize(n);
            let amount = rng.gen_range_u64(1500);
            let tx =
                Transaction::payment(&keypairs[from], keypairs[to].pk, amount, nonces[from] + 1);
            if accounts.apply(&tx).is_ok() {
                nonces[from] += 1;
            }
            assert_eq!(accounts.total(), total, "money conserved");
        }
        // Nonces recorded match applied counts.
        for (i, kp) in keypairs.iter().enumerate() {
            assert_eq!(accounts.nonce(&kp.pk), nonces[i]);
        }
    }
}

// --- Serialization roundtrips -----------------------------------------------

#[test]
fn transaction_roundtrip() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let kp = Keypair::from_seed(rng.gen_bytes32());
        let to = Keypair::from_seed(rng.gen_bytes32());
        let tx = Transaction::payment(&kp, to.pk, rng.next_u64(), rng.next_u64());
        let bytes = tx.encoded();
        let mut r = Reader::new(&bytes);
        let back = Transaction::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.id(), tx.id());
        assert!(back.signature_valid());
    }
}

#[test]
fn block_roundtrip() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let proposer = Keypair::from_seed(rng.gen_bytes32());
        let round = 1 + rng.gen_range_u64(999_999);
        let prev = rng.gen_bytes32();
        let prev_seed = rng.gen_bytes32();
        let (seed, proof) = propose_seed(&proposer, &prev_seed, round);
        let n_txs = rng.gen_range_usize(4);
        let txs: Vec<Transaction> = (0..n_txs)
            .map(|i| Transaction::payment(&proposer, proposer.pk, i as u64, i as u64 + 1))
            .collect();
        let mut payload = vec![0u8; rng.gen_range_usize(256)];
        rng.fill_bytes(&mut payload);
        let block = Block {
            round,
            prev_hash: prev,
            seed,
            seed_proof: Some(proof),
            proposer: Some(proposer.pk),
            timestamp: rng.next_u64(),
            txs,
            payload,
        };
        let bytes = block.encoded();
        assert_eq!(bytes.len(), block.wire_size());
        let mut r = Reader::new(&bytes);
        let back = Block::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.hash(), block.hash());
    }
}

// --- Seed chain ---------------------------------------------------------------

#[test]
fn seed_proposals_never_verify_under_wrong_context() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let kp = Keypair::from_seed(rng.gen_bytes32());
        let other = Keypair::from_seed(rng.gen_bytes32());
        assert_ne!(kp.pk, other.pk);
        let prev_seed = rng.gen_bytes32();
        let round = 1 + rng.gen_range_u64(9_999);
        let (seed, proof) = propose_seed(&kp, &prev_seed, round);
        assert_eq!(
            verify_seed_proposal(&kp.pk, &proof, &prev_seed, round),
            Some(seed)
        );
        assert_eq!(
            verify_seed_proposal(&other.pk, &proof, &prev_seed, round),
            None
        );
        assert_eq!(
            verify_seed_proposal(&kp.pk, &proof, &prev_seed, round + 1),
            None
        );
        // The fallback chain never collides with the VRF seed.
        assert_ne!(seed, fallback_seed(&prev_seed, round));
    }
}

// --- Sortition interval mapping ------------------------------------------------

#[test]
fn sub_user_counts_respect_cdf_intervals() {
    let mut rng = rng(5);
    for _ in 0..CASES {
        let mut out = [0u8; 32];
        rng.fill_bytes(&mut out[..8]);
        let output = VrfOutput(out);
        let w = 1 + rng.gen_range_u64(199);
        let tau = 1 + rng.gen_range_u64(99);
        let total = 200 + rng.gen_range_u64(9_800);
        let p = tau as f64 / total as f64;
        let j = sub_users_selected(&output, w, p);
        assert!(j <= w);
        // j sits in the CDF interval containing the hash fraction.
        let fraction = output.as_unit_fraction();
        let cdf_below: f64 = (0..j).map(|k| binomial_pmf(k, w, p)).sum();
        let cdf_above: f64 = (0..=j).map(|k| binomial_pmf(k, w, p)).sum();
        assert!(fraction >= cdf_below - 1e-9, "fraction below interval");
        if j < w {
            assert!(fraction < cdf_above + 1e-9, "fraction above interval");
        }
    }
}

// --- Weights ---------------------------------------------------------------------

#[test]
fn weights_snapshot_matches_balances() {
    let mut rng = rng(6);
    for _ in 0..CASES {
        let n = 1 + rng.gen_range_usize(7);
        let balances: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(500)).collect();
        let keypairs: Vec<Keypair> = (0..n)
            .map(|i| Keypair::from_seed([i as u8 + 10; 32]))
            .collect();
        let accounts = Accounts::genesis(keypairs.iter().zip(&balances).map(|(k, b)| (k.pk, *b)));
        let weights: RoundWeights = accounts.weights();
        assert_eq!(weights.total(), accounts.total());
        for (kp, b) in keypairs.iter().zip(&balances) {
            assert_eq!(weights.weight_of(&kp.pk), accounts.balance(&kp.pk));
            assert_eq!(weights.weight_of(&kp.pk), *b);
        }
    }
}
