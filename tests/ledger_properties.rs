//! Property-based tests over the ledger and consensus invariants.

use algorand::ba::RoundWeights;
use algorand::crypto::Keypair;
use algorand::ledger::codec::Reader;
use algorand::ledger::seed::{fallback_seed, propose_seed, verify_seed_proposal};
use algorand::ledger::{Accounts, Block, Transaction};
use algorand::sortition::{binomial::binomial_pmf, sub_users_selected};
use algorand_crypto::vrf::VrfOutput;
use proptest::prelude::*;

fn arb_keypair() -> impl Strategy<Value = Keypair> {
    any::<[u8; 32]>().prop_map(Keypair::from_seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // --- Conservation under arbitrary payment sequences -------------------

    #[test]
    fn random_payment_sequences_conserve_money(
        balances in proptest::collection::vec(1u64..1000, 3..6),
        ops in proptest::collection::vec((0usize..6, 0usize..6, 0u64..1500), 0..24),
    ) {
        let keypairs: Vec<Keypair> = (0..balances.len())
            .map(|i| Keypair::from_seed([i as u8 + 1; 32]))
            .collect();
        let mut accounts = Accounts::genesis(
            keypairs.iter().zip(&balances).map(|(k, b)| (k.pk, *b)),
        );
        let total: u64 = balances.iter().sum();
        let mut nonces = vec![0u64; keypairs.len()];
        for (from, to, amount) in ops {
            let from = from % keypairs.len();
            let to = to % keypairs.len();
            let tx = Transaction::payment(
                &keypairs[from],
                keypairs[to].pk,
                amount,
                nonces[from] + 1,
            );
            if accounts.apply(&tx).is_ok() {
                nonces[from] += 1;
            }
            prop_assert_eq!(accounts.total(), total);
        }
        // Nonces recorded match applied counts.
        for (i, kp) in keypairs.iter().enumerate() {
            prop_assert_eq!(accounts.nonce(&kp.pk), nonces[i]);
        }
    }

    // --- Serialization roundtrips -----------------------------------------

    #[test]
    fn transaction_roundtrip(kp in arb_keypair(), to in arb_keypair(), amount in any::<u64>(), nonce in any::<u64>()) {
        let tx = Transaction::payment(&kp, to.pk, amount, nonce);
        let bytes = tx.encoded();
        let mut r = Reader::new(&bytes);
        let back = Transaction::decode(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back.id(), tx.id());
        prop_assert!(back.signature_valid());
    }

    #[test]
    fn block_roundtrip(
        proposer in arb_keypair(),
        round in 1u64..1_000_000,
        prev in any::<[u8; 32]>(),
        prev_seed in any::<[u8; 32]>(),
        n_txs in 0usize..4,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        timestamp in any::<u64>(),
    ) {
        let (seed, proof) = propose_seed(&proposer, &prev_seed, round);
        let txs: Vec<Transaction> = (0..n_txs)
            .map(|i| Transaction::payment(&proposer, proposer.pk, i as u64, i as u64 + 1))
            .collect();
        let block = Block {
            round,
            prev_hash: prev,
            seed,
            seed_proof: Some(proof),
            proposer: Some(proposer.pk),
            timestamp,
            txs,
            payload,
        };
        let bytes = block.encoded();
        prop_assert_eq!(bytes.len(), block.wire_size());
        let mut r = Reader::new(&bytes);
        let back = Block::decode(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back.hash(), block.hash());
    }

    // --- Seed chain ---------------------------------------------------------

    #[test]
    fn seed_proposals_never_verify_under_wrong_context(
        kp in arb_keypair(),
        other in arb_keypair(),
        prev_seed in any::<[u8; 32]>(),
        round in 1u64..10_000,
    ) {
        prop_assume!(kp.pk != other.pk);
        let (seed, proof) = propose_seed(&kp, &prev_seed, round);
        prop_assert_eq!(verify_seed_proposal(&kp.pk, &proof, &prev_seed, round), Some(seed));
        prop_assert_eq!(verify_seed_proposal(&other.pk, &proof, &prev_seed, round), None);
        prop_assert_eq!(verify_seed_proposal(&kp.pk, &proof, &prev_seed, round + 1), None);
        // The fallback chain never collides with the VRF seed.
        prop_assert_ne!(seed, fallback_seed(&prev_seed, round));
    }

    // --- Sortition interval mapping ------------------------------------------

    #[test]
    fn sub_user_counts_respect_cdf_intervals(
        hash_prefix in any::<[u8; 8]>(),
        w in 1u64..200,
        tau in 1u64..100,
        total in 200u64..10_000,
    ) {
        let mut out = [0u8; 32];
        out[..8].copy_from_slice(&hash_prefix);
        let output = VrfOutput(out);
        let p = tau as f64 / total as f64;
        let j = sub_users_selected(&output, w, p);
        prop_assert!(j <= w);
        // j sits in the CDF interval containing the hash fraction.
        let fraction = output.as_unit_fraction();
        let cdf_below: f64 = (0..j).map(|k| binomial_pmf(k, w, p)).sum();
        let cdf_above: f64 = (0..=j).map(|k| binomial_pmf(k, w, p)).sum();
        prop_assert!(fraction >= cdf_below - 1e-9, "fraction below interval");
        if j < w {
            prop_assert!(fraction < cdf_above + 1e-9, "fraction above interval");
        }
    }

    // --- Weights ---------------------------------------------------------------

    #[test]
    fn weights_snapshot_matches_balances(
        balances in proptest::collection::vec(0u64..500, 1..8),
    ) {
        let keypairs: Vec<Keypair> = (0..balances.len())
            .map(|i| Keypair::from_seed([i as u8 + 10; 32]))
            .collect();
        let accounts = Accounts::genesis(
            keypairs.iter().zip(&balances).map(|(k, b)| (k.pk, *b)),
        );
        let weights: RoundWeights = accounts.weights();
        prop_assert_eq!(weights.total(), accounts.total());
        for (kp, b) in keypairs.iter().zip(&balances) {
            prop_assert_eq!(weights.weight_of(&kp.pk), accounts.balance(&kp.pk));
            prop_assert_eq!(weights.weight_of(&kp.pk), *b);
        }
    }
}
