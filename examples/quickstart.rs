//! Quickstart: the core primitives in five minutes.
//!
//! Walks through the building blocks in the order the paper introduces
//! them — keys and VRFs, cryptographic sortition, and one round of BA⋆
//! among a handful of simulated users — printing what happens at each
//! step.
//!
//! Run with: `cargo run --release --example quickstart`

use algorand::crypto::{sig, vrf, Keypair};
use algorand::sim::{SimConfig, Simulation};
use algorand::sortition::{self, Role, SortitionParams};

fn main() {
    println!("== 1. Keys, signatures, and VRFs (§5, §9) ==");
    let alice = Keypair::from_seed([1u8; 32]);
    let signature = sig::sign(&alice, b"a gossip message");
    assert!(sig::verify(&alice.pk, b"a gossip message", &signature).is_ok());
    println!("signed and verified a message under Alice's key");

    let (output, proof) = vrf::prove(&alice, b"seed||role");
    let verified = vrf::verify(&alice.pk, b"seed||role", &proof).unwrap();
    assert_eq!(output, verified);
    println!(
        "VRF output (pseudorandom, publicly verifiable): {:.6} as a unit fraction",
        output.as_unit_fraction()
    );

    println!();
    println!("== 2. Cryptographic sortition (Algorithm 1 & 2) ==");
    // Alice holds 40 of 100 currency units; the committee targets τ = 20
    // expected members, so Alice expects 8 of her sub-users selected.
    let params = SortitionParams {
        tau: 20.0,
        total_weight: 100,
    };
    let role = Role::Committee { round: 1, step: 1 };
    match sortition::select(&alice, &[7u8; 32], role, &params, 40) {
        Some(selection) => {
            let j = sortition::verify(&alice.pk, &selection.proof, &[7u8; 32], role, &params, 40)
                .expect("proof verifies");
            println!("Alice was selected as {j} sub-user(s); anyone can verify from the proof");
        }
        None => println!("Alice was not selected this round (expected ~8 of her 40 sub-users)"),
    }

    println!();
    println!("== 3. One round of consensus among 12 users (§4–§8) ==");
    let mut sim = Simulation::new(SimConfig::new(12));
    sim.run_rounds(1, 10 * 60 * 1_000_000);
    let stats = sim.round_stats(1).expect("round completed");
    println!(
        "round 1 completed in {:.2} s (median across users; min {:.2}, max {:.2})",
        stats.completion.median, stats.completion.min, stats.completion.max
    );
    println!(
        "{:.0}% of users saw FINAL consensus; {:.0}% agreed on the empty block",
        stats.final_fraction * 100.0,
        stats.empty_fraction * 100.0
    );
    let tip = sim.honest_node(0).chain().tip();
    println!(
        "agreed block: round {}, {} transaction(s), proposer {}",
        tip.round,
        tip.txs.len(),
        if tip.is_empty_block() {
            "none (empty)"
        } else {
            "selected by sortition"
        }
    );
}
