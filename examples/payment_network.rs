//! A simulated payment network: merchants confirming customer payments.
//!
//! The paper's motivating workload (§1): payments need confidence within
//! about a minute, not Bitcoin's hour. This example runs a 30-user
//! network where customers pay merchants every round, and reports when
//! each payment became *safely confirmed* — included in a block that is
//! final or has a final successor (§8.2) — versus merely appearing in a
//! block.
//!
//! Run with: `cargo run --release --example payment_network`

use algorand::ledger::Transaction;
use algorand::sim::{SimConfig, Simulation};

fn main() {
    let n = 30;
    let rounds = 4u64;
    let mut sim = Simulation::new(SimConfig::new(n));

    // Customers 0..5 each pay merchant 29 in waves (nonces 1..rounds).
    let merchant = sim.keypair(29).pk;
    let mut payments = Vec::new();
    for customer in 0..5usize {
        for nonce in 1..=2u64 {
            let tx = Transaction::payment(sim.keypair(customer), merchant, 1, nonce);
            payments.push((customer, nonce, tx.id()));
            // Hand the payment to a few gossip entry points.
            for entry in [customer, customer + 10, customer + 20] {
                sim.submit_transaction(entry, tx.clone());
            }
        }
    }

    sim.run_rounds(rounds, 30 * 60 * 1_000_000);

    println!("== payment confirmations (30 users, {rounds} rounds) ==");
    println!(
        "{:<10} {:<7} {:<12} {:<18}",
        "customer", "nonce", "in block", "safely confirmed"
    );
    let chain = sim.honest_node(7).chain(); // Any observer's view.
    let mut confirmed = 0;
    for (customer, nonce, tx_id) in &payments {
        let round = chain.confirmed_round(tx_id);
        let safe = chain.is_safely_confirmed(tx_id);
        confirmed += safe as u32;
        println!(
            "{:<10} {:<7} {:<12} {:<18}",
            customer,
            nonce,
            round.map_or("-".into(), |r| format!("round {r}")),
            if safe { "yes (final)" } else { "not yet" }
        );
    }
    println!();
    println!(
        "{} of {} payments safely confirmed; merchant balance: {} units",
        confirmed,
        payments.len(),
        chain.accounts().balance(&merchant)
    );

    // Latency summary: the paper's headline is confirmation within a
    // minute.
    let mut worst = 0.0f64;
    for r in 1..=rounds {
        if let Some(stats) = sim.round_stats(r) {
            worst = worst.max(stats.completion.max);
        }
    }
    println!("worst round completion across all users: {worst:.2} s (paper: <60 s)");
    assert!(confirmed > 0, "at least some payments must finalize");
}
