//! Committee-parameter explorer: the Figure 3 computation as a tool.
//!
//! Given an assumed honest-stake fraction and a failure budget, solves for
//! the committee size τ and threshold T that make one BA⋆ step safe and
//! live, and reports the bandwidth/security trade-off — the §7.5 analysis
//! a deployment engineer would run before changing h.
//!
//! Run with:
//! `cargo run --release --example committee_explorer [h%] [log10(eps)]`
//! e.g. `cargo run --release --example committee_explorer 82 -10`

use algorand::ba::VoteMessage;
use algorand::sortition::committee::{
    best_threshold, certificate_forgery_log10_bound, solve_committee_size,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let h_pct: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(80.0);
    let log_eps: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(-8.3); // 5e-9, the paper's budget.
    let h = (h_pct / 100.0).clamp(0.67, 0.99);
    let eps = 10f64.powf(log_eps);

    println!("honest stake fraction  h = {:.0}%", h * 100.0);
    println!("per-step failure budget  = {eps:.1e}");
    println!();
    match solve_committee_size(h, eps, 200_000) {
        Some((tau, t)) => {
            println!("sufficient committee:  tau = {tau}, T = {t:.3}");
            println!(
                "vote threshold:        {:.0} votes must agree per step",
                t * tau as f64
            );
            let per_step_kb = tau as f64 * VoteMessage::WIRE_SIZE as f64 / 1e3;
            println!(
                "bandwidth per step:    ~{per_step_kb:.0} KB of committee votes gossiped \
                 network-wide"
            );
            let forgery = certificate_forgery_log10_bound(tau as f64, t, h);
            println!(
                "certificate forgery:   per-step probability <= 10^{forgery:.0} \
                 (paper cites < 2^-166 for tau > 1000)"
            );
            let (_, achieved) = best_threshold(tau as f64, h);
            println!("achieved violation:    {achieved:.2e}");
        }
        None => {
            println!(
                "no committee up to 200,000 satisfies the budget — h is too close to 2/3 \
                 (the Figure 3 curve diverges there)"
            );
        }
    }
    println!();
    println!("reference: the paper operates at h = 80%, tau = 2000, T = 0.685.");
}
