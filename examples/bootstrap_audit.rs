//! Bootstrapping a brand-new user from certificates (§8.3).
//!
//! A network runs for several rounds; a newcomer who saw none of it
//! downloads the `(block, certificate)` history and validates everything
//! from genesis: sortition proofs, vote signatures, thresholds, seeds,
//! and transactions. Then it tries two forged histories and shows they
//! are rejected.
//!
//! Run with: `cargo run --release --example bootstrap_audit`

use algorand::ba::RealVerifier;
use algorand::ledger::{Blockchain, Transaction};
use algorand::sim::{SimConfig, Simulation};

fn main() {
    // --- The live network -------------------------------------------------
    let n = 20;
    let rounds = 3u64;
    let mut sim = Simulation::new(SimConfig::new(n));
    let tx = Transaction::payment(sim.keypair(0), sim.keypair(1).pk, 4, 1);
    for node in 0..n {
        sim.submit_transaction(node, tx.clone());
    }
    sim.run_rounds(rounds, 30 * 60 * 1_000_000);

    // --- Extract the history an existing node would serve -----------------
    let veteran = sim.honest_node(3).chain();
    let mut history = Vec::new();
    for r in 1..=veteran.tip().round {
        let block = veteran.block_at(r).expect("canonical").clone();
        let cert = veteran
            .certificate_at(r)
            .expect("every agreed block has a certificate")
            .clone();
        history.push((block, cert));
    }
    let cert_bytes: usize = history.iter().map(|(_, c)| c.wire_size()).sum();
    println!(
        "downloaded {} blocks with certificates ({:.1} KB of certificates)",
        history.len(),
        cert_bytes as f64 / 1e3
    );

    // --- The newcomer validates everything from genesis --------------------
    let cfg = sim.config().clone();
    let alloc: Vec<_> = (0..n)
        .map(|i| (sim.keypair(i).pk, cfg.stake_per_user))
        .collect();
    let chain = Blockchain::bootstrap(
        cfg.params.chain,
        alloc.iter().copied(),
        [0x47u8; 32], // The network's genesis seed (published).
        &history,
        &cfg.params.ba,
        &RealVerifier,
        sim.now(),
    )
    .expect("honest history must validate");
    println!(
        "newcomer validated {} rounds; tip matches the network: {}",
        chain.tip().round,
        chain.tip_hash() == veteran.tip_hash()
    );
    println!(
        "newcomer sees the payment: balance[payer]={}, balance[payee]={}",
        chain.accounts().balance(&sim.keypair(0).pk),
        chain.accounts().balance(&sim.keypair(1).pk),
    );

    // --- Forged histories are rejected -------------------------------------
    let mut tampered = history.clone();
    tampered[0].0.payload.push(0xff); // Tamper with block content.
    let err = Blockchain::bootstrap(
        cfg.params.chain,
        alloc.iter().copied(),
        [0x47u8; 32],
        &tampered,
        &cfg.params.ba,
        &RealVerifier,
        sim.now(),
    )
    .unwrap_err();
    println!("tampered block rejected: {err}");

    let mut thin = history.clone();
    thin[1].1.votes.truncate(1); // Strip the certificate below threshold.
    let err = Blockchain::bootstrap(
        cfg.params.chain,
        alloc.iter().copied(),
        [0x47u8; 32],
        &thin,
        &cfg.params.ba,
        &RealVerifier,
        sim.now(),
    )
    .unwrap_err();
    println!("under-voted certificate rejected: {err}");
}
