//! Adversarial resilience demo: equivocation, double votes, and a
//! network partition, on one screen.
//!
//! Reproduces the §10.4 attack (a proposer sends different blocks to each
//! half of its peers while malicious committee members vote for both) and
//! then partitions the network, demonstrating the paper's safety claim:
//! honest users never finalize conflicting blocks, under either attack.
//!
//! Run with: `cargo run --release --example adversarial_resilience`

use algorand::sim::{SimConfig, Simulation};
use std::collections::HashMap;

const MINUTE: u64 = 60 * 1_000_000;

fn check_no_divergence(sim: &Simulation, n: usize) -> usize {
    let mut finalized: HashMap<u64, [u8; 32]> = HashMap::new();
    let mut count = 0;
    for i in 0..n {
        let chain = sim.honest_node(i).chain();
        for round in 1..=chain.tip().round {
            if chain.is_finalized(round) {
                let h = chain.block_at(round).unwrap().hash();
                if let Some(prev) = finalized.get(&round) {
                    assert_eq!(*prev, h, "SAFETY VIOLATION at round {round}");
                } else {
                    finalized.insert(round, h);
                    count += 1;
                }
            }
        }
    }
    count
}

fn main() {
    println!("== attack 1: 20% malicious stake, equivocating proposers (§10.4) ==");
    let n = 30;
    let mut cfg = SimConfig::new(n);
    cfg.n_malicious = 6;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(3, 30 * MINUTE);
    let n_honest = n - 6;
    let finals = check_no_divergence(&sim, n_honest);
    let equivocations = sim.adversary().lock().unwrap().equivocations.len();
    println!("  equivocation attacks mounted: {equivocations}");
    println!("  finalized rounds (all consistent): {finals}");
    for r in 1..=3u64 {
        if let Some(stats) = sim.round_stats(r) {
            println!(
                "  round {r}: median {:.2} s, {:.0}% final, {:.0}% empty",
                stats.completion.median,
                stats.final_fraction * 100.0,
                stats.empty_fraction * 100.0
            );
        }
    }

    println!();
    println!("== attack 2: full network partition for 60 s ==");
    let n = 16;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 99;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(1, 10 * MINUTE);
    let before = sim.honest_node(0).chain().tip().round;
    let t_heal = sim.now() + 60 * MINUTE / 60;
    let half = n / 2;
    sim.set_network_filter(Some(Box::new(move |now, from, to| {
        now >= t_heal || (from < half) == (to < half)
    })));
    sim.run_rounds(before + 2, 30 * MINUTE);
    check_no_divergence(&sim, n);
    let after = sim.honest_node(0).chain().tip().round;
    println!("  rounds before partition: {before}; after heal: {after}");
    println!("  no honest user finalized conflicting blocks at any point");
    assert!(after > before, "liveness must resume after the heal");
    println!();
    println!("both attacks tolerated: safety preserved, liveness restored.");
}
